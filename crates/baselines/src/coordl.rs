//! CoorDL-style coordination: constraints and cost model.
//!
//! CoorDL (MinIO/DS-Analyzer) coordinates DALI pipelines across training
//! processes at the cluster level. The paper identifies three structural
//! properties that our cost model reproduces (§2, §4.7):
//!
//! 1. **Rigid lockstep** — a batch is released only when *all* processes
//!    finished it, and there is no consumer-side buffer: the simulator runs
//!    CoorDL with a publish window of 1.
//! 2. **Per-consumer distribution cost** — each process receives its own
//!    copy through host memory, costing CPU per consumer per batch; this is
//!    why its CPU utilization scales with collocation degree (Figure 14a).
//! 3. **No single-GPU collocation** — "CoorDL is designed for models
//!    training on separate GPUs and cannot utilize leftover GPU compute
//!    power to train multiple models on a single GPU";
//!    [`validate_coordl_placement`] enforces exactly that.

use ts_sim::WorkloadSpec;

/// Why a workload placement is invalid for CoorDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordlPlacementError {
    /// The GPU that two or more trainers were assigned to.
    pub gpu: usize,
    /// Names of the colliding trainers.
    pub trainers: Vec<String>,
}

impl std::fmt::Display for CoordlPlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CoorDL cannot collocate {} on GPU {} (one process per GPU required)",
            self.trainers.join(" and "),
            self.gpu
        )
    }
}

impl std::error::Error for CoordlPlacementError {}

/// Checks CoorDL's one-process-per-GPU constraint.
pub fn validate_coordl_placement(trainers: &[WorkloadSpec]) -> Result<(), CoordlPlacementError> {
    let mut by_gpu: std::collections::BTreeMap<usize, Vec<String>> =
        std::collections::BTreeMap::new();
    for t in trainers {
        by_gpu.entry(t.gpu).or_default().push(t.name.clone());
    }
    for (gpu, names) in by_gpu {
        if names.len() > 1 {
            return Err(CoordlPlacementError {
                gpu,
                trainers: names,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separate_gpus_are_fine() {
        let trainers = vec![
            WorkloadSpec::new("a", 0, 64, 1.0),
            WorkloadSpec::new("b", 1, 64, 1.0),
        ];
        assert!(validate_coordl_placement(&trainers).is_ok());
    }

    #[test]
    fn single_gpu_collocation_is_rejected() {
        let trainers = vec![
            WorkloadSpec::new("a", 1, 64, 1.0),
            WorkloadSpec::new("b", 1, 64, 1.0),
        ];
        let err = validate_coordl_placement(&trainers).unwrap_err();
        assert_eq!(err.gpu, 1);
        assert_eq!(err.trainers, vec!["a".to_string(), "b".to_string()]);
        assert!(err.to_string().contains("cannot collocate"));
    }
}
