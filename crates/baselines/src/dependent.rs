//! Joader's dependent sampling, implemented for real.
//!
//! Joader registers every training job with the sampling server. Each
//! iteration the server computes the **intersection** of all jobs' pending
//! (not-yet-visited) sample sets; samples drawn from the intersection can
//! be loaded once and delivered to every job, maximizing sharing even when
//! jobs progress at different speeds or joined at different times. The
//! price is that the intersection is recomputed every iteration — "it
//! requires intersection calculations to run at every iteration, which adds
//! a high CPU cost" (§2). The [`DependentSampler::ops`] counter measures
//! exactly that cost in set operations, and is what calibrates the Joader
//! cost model in the simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A delivery decided by one sampling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The sample index to load (loaded once).
    pub sample: usize,
    /// The jobs the loaded sample is delivered to.
    pub jobs: Vec<u64>,
}

/// The dependent sampling server.
#[derive(Debug)]
pub struct DependentSampler {
    dataset_len: usize,
    pending: BTreeMap<u64, BTreeSet<usize>>,
    next_job: u64,
    rng: StdRng,
    /// Set operations performed (intersection membership tests + removals).
    ops: u64,
    /// Samples loaded (each corresponds to one decode).
    loads: u64,
    /// (job, sample) deliveries made.
    deliveries: u64,
}

impl DependentSampler {
    /// A sampler over a dataset of `dataset_len` samples.
    pub fn new(dataset_len: usize, seed: u64) -> Self {
        Self {
            dataset_len,
            pending: BTreeMap::new(),
            next_job: 0,
            rng: StdRng::seed_from_u64(seed),
            ops: 0,
            loads: 0,
            deliveries: 0,
        }
    }

    /// Registers a job; its epoch starts with every sample pending.
    pub fn add_job(&mut self) -> u64 {
        let id = self.next_job;
        self.next_job += 1;
        self.pending.insert(id, (0..self.dataset_len).collect());
        id
    }

    /// Removes a job.
    pub fn remove_job(&mut self, job: u64) {
        self.pending.remove(&job);
    }

    /// Number of registered jobs.
    pub fn jobs(&self) -> usize {
        self.pending.len()
    }

    /// Pending samples for `job` in its current epoch.
    pub fn pending_of(&self, job: u64) -> Option<usize> {
        self.pending.get(&job).map(|s| s.len())
    }

    /// Set operations performed so far (the CPU-cost proxy).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Samples loaded so far (decodes performed).
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// (job, sample) deliveries so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Sharing efficiency: deliveries per load (1.0 = no sharing,
    /// `jobs()` = perfect sharing).
    pub fn sharing_factor(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.deliveries as f64 / self.loads as f64
    }

    /// Refills a job whose epoch completed.
    pub fn refill(&mut self, job: u64) {
        if let Some(p) = self.pending.get_mut(&job) {
            *p = (0..self.dataset_len).collect();
        }
    }

    /// One sampling step: picks the next sample to load and who receives
    /// it. Returns `None` when no job has pending samples.
    ///
    /// Deliberately named like `Iterator::next`; the sampler is iterator-
    /// shaped, but an `Iterator` impl would hide the per-step cost counters.
    ///
    /// The intersection of all pending sets is recomputed here — this is
    /// the per-iteration cost the paper measures against.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Delivery> {
        if self.pending.is_empty() {
            return None;
        }
        // Intersection: iterate the smallest set, probe the others.
        let (&smallest_job, smallest) = self
            .pending
            .iter()
            .min_by_key(|(_, s)| s.len())
            .expect("non-empty");
        let mut intersection: Vec<usize> = Vec::new();
        for &s in smallest {
            self.ops += 1;
            let mut in_all = true;
            for (j, set) in &self.pending {
                if *j == smallest_job {
                    continue;
                }
                self.ops += 1;
                if !set.contains(&s) {
                    in_all = false;
                    break;
                }
            }
            if in_all {
                intersection.push(s);
            }
        }
        let (sample, jobs): (usize, Vec<u64>) = if !intersection.is_empty() {
            let pick = intersection[self.rng.gen_range(0..intersection.len())];
            (pick, self.pending.keys().copied().collect())
        } else {
            // No common pending sample: serve the job with most pending
            // (keeps stragglers from starving).
            let (&job, set) = self
                .pending
                .iter()
                .filter(|(_, s)| !s.is_empty())
                .max_by_key(|(_, s)| s.len())?;
            let nth = self.rng.gen_range(0..set.len());
            let pick = *set.iter().nth(nth).expect("non-empty set");
            (pick, vec![job])
        };
        for j in &jobs {
            let set = self.pending.get_mut(j).expect("job exists");
            set.remove(&sample);
            self.ops += 1;
        }
        self.loads += 1;
        self.deliveries += jobs.len() as u64;
        Some(Delivery { sample, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_visits_every_sample_once() {
        let mut s = DependentSampler::new(16, 1);
        let j = s.add_job();
        let mut seen = BTreeSet::new();
        while let Some(d) = s.next() {
            assert_eq!(d.jobs, vec![j]);
            assert!(seen.insert(d.sample), "duplicate {}", d.sample);
        }
        assert_eq!(seen.len(), 16);
        assert_eq!(s.pending_of(j), Some(0));
    }

    #[test]
    fn aligned_jobs_share_every_load() {
        let mut s = DependentSampler::new(32, 2);
        let a = s.add_job();
        let b = s.add_job();
        let mut count = 0;
        while let Some(d) = s.next() {
            let mut jobs = d.jobs.clone();
            jobs.sort_unstable();
            assert_eq!(jobs, vec![a, b], "every load delivered to both");
            count += 1;
        }
        assert_eq!(count, 32, "each sample loaded exactly once for both");
        assert!((s.sharing_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn late_joiner_shares_the_overlap_then_catches_up() {
        let mut s = DependentSampler::new(16, 3);
        let a = s.add_job();
        // job a visits 6 samples alone
        for _ in 0..6 {
            assert_eq!(s.next().unwrap().jobs, vec![a]);
        }
        let b = s.add_job();
        // the intersection is a's remaining 10 samples: shared deliveries
        let mut shared = 0;
        let mut solo_b = 0;
        while let Some(d) = s.next() {
            if d.jobs.len() == 2 {
                shared += 1;
            } else {
                assert_eq!(d.jobs, vec![b], "only b has leftovers");
                solo_b += 1;
            }
        }
        assert_eq!(shared, 10);
        assert_eq!(solo_b, 6, "b revisits what it missed");
        // loads: 6 (a alone) + 10 (shared) + 6 (b alone) = 22 < 32 naive
        assert_eq!(s.loads(), 22);
    }

    #[test]
    fn intersection_cost_grows_with_jobs() {
        let cost_for = |n: usize| {
            let mut s = DependentSampler::new(64, 7);
            for _ in 0..n {
                s.add_job();
            }
            while s.next().is_some() {}
            s.ops() as f64 / s.loads() as f64
        };
        let c1 = cost_for(1);
        let c4 = cost_for(4);
        let c8 = cost_for(8);
        assert!(c4 > 2.0 * c1, "c1={c1} c4={c4}");
        assert!(c8 > 1.5 * c4, "c4={c4} c8={c8}");
    }

    #[test]
    fn refill_starts_a_new_epoch() {
        let mut s = DependentSampler::new(8, 5);
        let j = s.add_job();
        while s.next().is_some() {}
        assert_eq!(s.pending_of(j), Some(0));
        s.refill(j);
        assert_eq!(s.pending_of(j), Some(8));
        let mut seen = BTreeSet::new();
        while let Some(d) = s.next() {
            seen.insert(d.sample);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn remove_job_frees_the_stragglers() {
        let mut s = DependentSampler::new(8, 6);
        let a = s.add_job();
        for _ in 0..4 {
            s.next();
        }
        let b = s.add_job();
        s.remove_job(a);
        // only b remains; it visits its full pending set
        let mut n = 0;
        while s.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert_eq!(s.jobs(), 1);
        assert_eq!(s.pending_of(b), Some(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = DependentSampler::new(32, seed);
            s.add_job();
            s.add_job();
            let mut order = Vec::new();
            while let Some(d) = s.next() {
                order.push(d.sample);
            }
            order
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
