//! Property tests of the processor-sharing engine: work conservation and
//! capacity limits under arbitrary job mixes.

use proptest::prelude::*;
use ts_sim::ps::{PsResource, Sharing};

proptest! {
    /// Running arbitrary job sets to completion conserves work exactly and
    /// never exceeds capacity in the utilization integral.
    #[test]
    fn ps_conserves_work(
        capacity in 1.0f64..32.0,
        jobs in prop::collection::vec(0.001f64..2.0, 1..40)
    ) {
        let mut r: PsResource<usize> = PsResource::new("cpu", capacity, Sharing::Fair);
        r.settle(0);
        let total_work: f64 = jobs.iter().sum();
        for (i, w) in jobs.iter().enumerate() {
            r.add(0, *w, 1.0, i);
        }
        let mut now = 0u64;
        let mut done = 0usize;
        let mut guard = 0;
        while r.active() > 0 {
            guard += 1;
            prop_assert!(guard < 10_000, "no progress");
            let next = r.next_completion(now).unwrap();
            prop_assert!(next > now || guard < 3);
            now = next;
            done += r.settle(now).len();
        }
        prop_assert_eq!(done, jobs.len());
        let err = (r.work_done() - total_work).abs() / total_work;
        prop_assert!(err < 1e-6, "work drift {}", err);
        // utilization never implies more than capacity
        prop_assert!(r.utilization(now) <= 1.0 + 1e-9);
        // total busy time ≥ work/capacity (can't finish faster than capacity)
        let elapsed_s = now as f64 / 1e9;
        prop_assert!(elapsed_s * capacity + 1e-6 >= total_work);
    }

    /// Completion order respects remaining work for equal weights: a
    /// strictly smaller job never finishes after a strictly larger one
    /// that arrived at the same time.
    #[test]
    fn ps_completion_order_matches_work(
        works in prop::collection::vec(0.01f64..5.0, 2..20)
    ) {
        let mut r: PsResource<usize> = PsResource::new("gpu", 1.0, Sharing::Fair);
        r.settle(0);
        for (i, w) in works.iter().enumerate() {
            r.add(0, *w, 1.0, i);
        }
        let mut finished: Vec<usize> = Vec::new();
        let mut now = 0u64;
        while r.active() > 0 {
            now = r.next_completion(now).unwrap();
            finished.extend(r.settle(now));
        }
        for pair in finished.windows(2) {
            prop_assert!(
                works[pair[0]] <= works[pair[1]] + 1e-9,
                "{} (w={}) finished before {} (w={})",
                pair[0], works[pair[0]], pair[1], works[pair[1]]
            );
        }
    }
}
