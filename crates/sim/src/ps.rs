//! Processor-sharing resources.
//!
//! CPU core pools, GPUs under MPS, and disk bandwidth all behave as
//! processor-sharing servers at the timescales the paper measures: `k`
//! concurrent jobs each demanding up to one unit share `min(1, C/k)` of a
//! capacity-`C` resource. NVIDIA MPS explicitly time/space-shares SMs this
//! way (§3.2.5); `top`'s busy% is the CPU pool's utilization integral.
//!
//! Jobs carry a `remaining` amount of *work* (resource-seconds). Rates are
//! recomputed whenever the job set changes ("settling"), which makes the
//! model exact for piecewise-constant multiprogramming levels.

use crate::des::Time;

/// Sharing efficiency as a function of the number of active jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sharing {
    /// Perfect sharing (MPS, CPU pools, disk).
    Fair,
    /// Degraded sharing: effective capacity is `C · 1/(1 + penalty·(n-1))`.
    /// Models multi-stream GPU sharing, which the paper finds inferior to
    /// MPS (Figure 11's blurred bars).
    Penalized {
        /// Per-extra-job efficiency penalty (e.g. `0.08`).
        penalty: f64,
    },
}

impl Sharing {
    fn efficiency(&self, n: usize) -> f64 {
        match self {
            Sharing::Fair => 1.0,
            Sharing::Penalized { penalty } => {
                if n <= 1 {
                    1.0
                } else {
                    1.0 / (1.0 + penalty * (n as f64 - 1.0))
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Job<T> {
    remaining: f64, // resource-seconds
    weight: f64,    // max share (1.0 = one core / one full process)
    tag: T,
}

/// A processor-sharing resource with tagged jobs.
#[derive(Debug, Clone)]
pub struct PsResource<T> {
    name: String,
    capacity: f64,
    sharing: Sharing,
    jobs: Vec<(u64, Job<T>)>,
    next_id: u64,
    last_settle: Time,
    /// ∫ busy-units dt, in resource-unit–seconds.
    busy_integral: f64,
    /// Total work completed, in resource-seconds (for conservation checks).
    work_done: f64,
}

const EPS: f64 = 1e-9;

impl<T> PsResource<T> {
    /// A resource with `capacity` units (cores, GPUs, bytes/s).
    pub fn new(name: impl Into<String>, capacity: f64, sharing: Sharing) -> Self {
        Self {
            name: name.into(),
            capacity: capacity.max(EPS),
            sharing,
            jobs: Vec::new(),
            next_id: 0,
            last_settle: 0,
            busy_integral: 0.0,
            work_done: 0.0,
        }
    }

    /// Resource name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in resource units.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of active jobs.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job service rate with the current job set.
    fn rate_of(&self, weight: f64) -> f64 {
        let total_weight: f64 = self.jobs.iter().map(|(_, j)| j.weight).sum();
        if total_weight <= EPS {
            return 0.0;
        }
        let eff_capacity = self.capacity * self.sharing.efficiency(self.jobs.len());
        if total_weight <= eff_capacity {
            weight
        } else {
            weight * eff_capacity / total_weight
        }
    }

    /// Total consumption rate right now (for utilization).
    fn busy_rate(&self) -> f64 {
        let total_weight: f64 = self.jobs.iter().map(|(_, j)| j.weight).sum();
        let eff_capacity = self.capacity * self.sharing.efficiency(self.jobs.len());
        total_weight.min(eff_capacity)
    }

    /// Advances all jobs to `now`, returning the tags of jobs that finished.
    pub fn settle(&mut self, now: Time) -> Vec<T> {
        let dt = (now.saturating_sub(self.last_settle)) as f64 / 1e9;
        if dt > 0.0 {
            self.busy_integral += self.busy_rate() * dt;
            let rates: Vec<f64> = self
                .jobs
                .iter()
                .map(|(_, j)| self.rate_of(j.weight))
                .collect();
            for ((_, job), rate) in self.jobs.iter_mut().zip(&rates) {
                let done = rate * dt;
                self.work_done += done.min(job.remaining);
                job.remaining -= done;
            }
            self.last_settle = now;
        } else {
            self.last_settle = self.last_settle.max(now);
        }
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].1.remaining <= EPS {
                let (_, job) = self.jobs.remove(i);
                finished.push(job.tag);
            } else {
                i += 1;
            }
        }
        finished
    }

    /// Adds a job of `work` resource-seconds with `weight` max share.
    ///
    /// The caller must have settled to `now` first (debug-asserted).
    pub fn add(&mut self, now: Time, work: f64, weight: f64, tag: T) -> u64 {
        debug_assert_eq!(self.last_settle, now, "settle before add");
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.push((
            id,
            Job {
                remaining: work.max(0.0),
                weight: weight.max(EPS),
                tag,
            },
        ));
        id
    }

    /// Absolute time of the next job completion under current rates.
    pub fn next_completion(&self, now: Time) -> Option<Time> {
        debug_assert_eq!(self.last_settle, now, "settle before querying");
        self.jobs
            .iter()
            .map(|(_, j)| {
                let rate = self.rate_of(j.weight);
                if rate <= EPS {
                    crate::des::FOREVER
                } else {
                    let dt_ns = (j.remaining / rate * 1e9).ceil().max(1.0);
                    now.saturating_add(dt_ns as Time)
                }
            })
            .min()
    }

    /// Mean busy units over `[0, until]` divided by capacity ∈ `[0, 1]`.
    pub fn utilization(&self, until: Time) -> f64 {
        if until == 0 {
            return 0.0;
        }
        let tail = (until.saturating_sub(self.last_settle)) as f64 / 1e9 * self.busy_rate();
        (self.busy_integral + tail) / (until as f64 / 1e9) / self.capacity
    }

    /// Mean busy units over `[0, until]` (e.g. busy cores).
    pub fn mean_busy(&self, until: Time) -> f64 {
        self.utilization(until) * self.capacity
    }

    /// Total completed work in resource-seconds.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle_all<T>(r: &mut PsResource<T>, t: Time) -> Vec<T> {
        r.settle(t)
    }

    #[test]
    fn single_job_runs_at_weight_speed() {
        let mut r: PsResource<&str> = PsResource::new("cpu", 4.0, Sharing::Fair);
        r.settle(0);
        r.add(0, 2.0, 1.0, "a"); // 2 core-seconds at 1 core
        assert_eq!(r.next_completion(0), Some(2_000_000_000));
        let done = settle_all(&mut r, 2_000_000_000);
        assert_eq!(done, vec!["a"]);
        // resource was 1/4 busy for 2s
        assert!((r.utilization(2_000_000_000) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_shares_fairly() {
        let mut r: PsResource<u32> = PsResource::new("cpu", 2.0, Sharing::Fair);
        r.settle(0);
        for i in 0..4 {
            r.add(0, 1.0, 1.0, i); // 4 jobs, 2 cores → rate 0.5 each
        }
        assert_eq!(r.next_completion(0), Some(2_000_000_000));
        let mut done = settle_all(&mut r, 2_000_000_000);
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2, 3]);
        assert!((r.utilization(2_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_when_jobs_leave() {
        let mut r: PsResource<&str> = PsResource::new("gpu", 1.0, Sharing::Fair);
        r.settle(0);
        r.add(0, 1.0, 1.0, "short");
        r.add(0, 2.0, 1.0, "long");
        // both at 0.5: short finishes at t=2
        assert_eq!(r.next_completion(0), Some(2_000_000_000));
        assert_eq!(settle_all(&mut r, 2_000_000_000), vec!["short"]);
        // long has 1.0 left, now at full rate: finishes at t=3
        assert_eq!(r.next_completion(2_000_000_000), Some(3_000_000_000));
        assert_eq!(settle_all(&mut r, 3_000_000_000), vec!["long"]);
        // conservation: 3 resource-seconds of work done
        assert!((r.work_done() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn penalized_sharing_slows_everyone() {
        let mut fair: PsResource<u32> = PsResource::new("mps", 1.0, Sharing::Fair);
        let mut streams: PsResource<u32> =
            PsResource::new("streams", 1.0, Sharing::Penalized { penalty: 0.1 });
        for r in [&mut fair, &mut streams] {
            r.settle(0);
            r.add(0, 1.0, 1.0, 0);
            r.add(0, 1.0, 1.0, 1);
        }
        let t_fair = fair.next_completion(0).unwrap();
        let t_streams = streams.next_completion(0).unwrap();
        // two jobs of 1 unit each at rate 0.5 → both done at t = 2 s
        assert_eq!(t_fair, 2_000_000_000);
        assert!(t_streams > t_fair);
        // 10% penalty at n=2 → per-job rate (1/1.1)/2 → 2.2 s
        assert!((t_streams as f64 - 2.2e9).abs() < 10.0, "{t_streams}");
    }

    #[test]
    fn weights_cap_individual_rates() {
        let mut r: PsResource<&str> = PsResource::new("cpu", 8.0, Sharing::Fair);
        r.settle(0);
        // one worker thread can use at most one core even on an idle pool
        r.add(0, 1.0, 1.0, "w");
        assert_eq!(r.next_completion(0), Some(1_000_000_000));
    }

    #[test]
    fn utilization_integrates_piecewise() {
        let mut r: PsResource<u32> = PsResource::new("cpu", 2.0, Sharing::Fair);
        r.settle(0);
        r.add(0, 1.0, 1.0, 0); // busy 1 core for 1s
        r.settle(1_000_000_000);
        // idle until t=3
        r.settle(3_000_000_000);
        // busy 2 cores for 1s
        r.add(3_000_000_000, 1.0, 1.0, 1);
        r.add(3_000_000_000, 1.0, 1.0, 2);
        r.settle(4_000_000_000);
        // total: (1 + 0 + 2) core-seconds over 4s of 2 cores = 3/8
        assert!((r.utilization(4_000_000_000) - 3.0 / 8.0).abs() < 1e-9);
        assert!((r.mean_busy(4_000_000_000) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn zero_work_job_finishes_immediately() {
        let mut r: PsResource<&str> = PsResource::new("cpu", 1.0, Sharing::Fair);
        r.settle(0);
        r.add(0, 0.0, 1.0, "instant");
        assert_eq!(settle_all(&mut r, 0), vec!["instant"]);
    }
}
