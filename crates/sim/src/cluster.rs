//! The cluster world: loader pipelines, trainers, and the four data-loading
//! disciplines of the paper's evaluation.
//!
//! One [`SimConfig`] describes a node (CPU pool, GPUs, disk), a set of
//! training processes, a loader cost profile, and a [`Strategy`]:
//!
//! * [`Strategy::NonShared`] — the conventional baseline of Figure 2a: one
//!   loader per training process, the worker budget split across them;
//! * [`Strategy::TensorSocket`] — one producer with the full worker budget;
//!   consumers receive *pointers*; data crosses PCIe once and fans out over
//!   NVLink; the publish window is the very [`tensorsocket::BatchWindow`]
//!   the threaded runtime runs;
//! * [`Strategy::CoorDL`] — coordinated loading in rigid lockstep
//!   (window = 1) with per-consumer CPU distribution work and per-consumer
//!   PCIe delivery (CoorDL cannot use NVLink fan-out or collocate on one
//!   GPU);
//! * [`Strategy::Joader`] — a shared loading server whose per-sample CPU
//!   cost grows with the number of jobs (dependent-sampling intersections
//!   + per-job delivery), plus a consumer-side tensor-conversion stage.
//!
//! The simulation is event-driven over virtual time and fully
//! deterministic; a full experiment runs in milliseconds.

use crate::des::{Scheduler, Time, FOREVER};
use crate::ps::{PsResource, Sharing};
use tensorsocket::protocol::acks::AckTracker;
use tensorsocket::protocol::buffer::BatchWindow;

/// GPU collocation primitive (§4.1): MPS shares SMs cleanly; multi-streams
/// pay a context penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuSharing {
    /// NVIDIA Multi-Process Service: fair SM sharing.
    Mps,
    /// Multi-stream sharing with a per-extra-process efficiency penalty.
    Streams {
        /// Penalty per extra collocated process (e.g. `0.08`).
        penalty: f64,
    },
}

/// One GPU in the simulated node.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Throughput relative to an A100 (H100 ≈ 2.0, A10G ≈ 0.4).
    pub relative_throughput: f64,
    /// VRAM capacity in bytes.
    pub vram_bytes: u64,
}

/// The simulated node.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Display name.
    pub name: String,
    /// CPU cores available to loading and training.
    pub vcpus: f64,
    /// GPUs.
    pub gpus: Vec<GpuConfig>,
    /// Collocation primitive for processes sharing one GPU.
    pub gpu_sharing: GpuSharing,
    /// Sequential read bandwidth of storage, bytes/s.
    pub disk_read_bps: f64,
    /// Whether GPUs are NVLink-connected (A100 server: yes; g5: n/a).
    pub nvlink: bool,
}

impl ClusterSpec {
    /// Builds a simulator spec from a `ts-device` server description.
    pub fn from_server(s: &ts_device::ServerSpec) -> Self {
        Self {
            name: s.name.to_string(),
            vcpus: s.vcpus as f64,
            gpus: (0..s.gpu_count)
                .map(|_| GpuConfig {
                    relative_throughput: s.gpu.relative_throughput,
                    vram_bytes: s.gpu.vram_bytes,
                })
                .collect(),
            gpu_sharing: GpuSharing::Mps,
            disk_read_bps: s.disk_read_bps,
            nvlink: s.gpu.has_nvlink && s.gpu_count > 1,
        }
    }
}

/// One training process.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Display name (model).
    pub name: String,
    /// GPU index the process trains on.
    pub gpu: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// GPU time per sample in milliseconds on an A100-class GPU
    /// (scaled by the GPU's `relative_throughput`).
    pub gpu_ms_per_sample: f64,
    /// Serial host-side CPU stage per sample before the GPU step
    /// (e.g. Joader's NumPy→tensor conversion).
    pub pre_gpu_cpu_ms_per_sample: f64,
    /// Static VRAM for weights/activations.
    pub model_vram: u64,
    /// Extra PCIe bytes per sample unrelated to data loading (gradient
    /// all-reduce etc.; reproduces Table 4's 48 MB/s rows).
    pub extra_pcie_bytes_per_sample: u64,
    /// Relative batch-to-batch jitter of the GPU step time in `[0, 1)`:
    /// each step's work is scaled by a deterministic pseudo-random factor
    /// in `[1-jitter, 1+jitter]`. Real training fluctuates ("a training
    /// process falling behind during a batch", §3.1); this is what the
    /// consumer batch buffer absorbs.
    pub gpu_jitter_frac: f64,
}

impl WorkloadSpec {
    /// A simple workload on `gpu` with the given costs.
    pub fn new(name: &str, gpu: usize, batch_size: usize, gpu_ms_per_sample: f64) -> Self {
        Self {
            name: name.to_string(),
            gpu,
            batch_size,
            gpu_ms_per_sample,
            pre_gpu_cpu_ms_per_sample: 0.0,
            model_vram: 6_000_000_000,
            extra_pcie_bytes_per_sample: 0,
            gpu_jitter_frac: 0.0,
        }
    }
}

/// Loader cost profile (per dataset).
#[derive(Debug, Clone)]
pub struct LoaderSpec {
    /// Pre-processing CPU per sample (decode + augment), milliseconds.
    pub cpu_ms_per_sample: f64,
    /// Encoded bytes read from storage per sample.
    pub disk_bytes_per_sample: u64,
    /// Decoded bytes shipped host→device per sample.
    pub h2d_bytes_per_sample: u64,
    /// Total data-loading worker budget on the node.
    pub num_workers: usize,
    /// Prefetch queue capacity per loader, in batches.
    pub prefetch_batches: usize,
}

/// The data-loading discipline.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// One loader per training process; workers split across them.
    NonShared,
    /// One shared TensorSocket producer.
    TensorSocket {
        /// Consumer batch buffer N (paper default 2).
        buffer: usize,
        /// GPU the producer stages batches on.
        producer_gpu: usize,
        /// Producer-side GPU work per sample (e.g. frozen CLIP inference
        /// for DALL-E, Figure 7/12), milliseconds on an A100-class GPU.
        producer_gpu_ms_per_sample: f64,
        /// Producer CPU overhead per batch per consumer (ack handling,
        /// payload packing), milliseconds.
        producer_cpu_ms_per_batch_per_consumer: f64,
        /// Serial per-batch publish latency in milliseconds (payload
        /// packing + socket hop + host→device transfer issue). This is the
        /// latency the batch buffer exists to hide (§3.2.5): with N = 1 it
        /// lands on the critical path; with N ≥ 2 prefetch overlaps it
        /// with training.
        publish_latency_ms: f64,
    },
    /// CoorDL-like coordination.
    CoorDL {
        /// CPU cost of distributing one sample to one consumer, ms.
        dist_cpu_ms_per_sample_per_consumer: f64,
    },
    /// Joader-like shared server with dependent sampling.
    Joader {
        /// Server-side CPU per sample *per job* (intersection computation
        /// and per-job delivery), milliseconds.
        server_cpu_ms_per_sample_per_job: f64,
        /// Consumer-side tensor-conversion CPU per sample, milliseconds.
        convert_cpu_ms_per_sample: f64,
    },
}

impl Strategy {
    /// Convenience: TensorSocket with paper defaults on GPU 0.
    pub fn tensorsocket() -> Self {
        Strategy::TensorSocket {
            buffer: 2,
            producer_gpu: 0,
            producer_gpu_ms_per_sample: 0.0,
            producer_cpu_ms_per_batch_per_consumer: 0.05,
            publish_latency_ms: 1.0,
        }
    }

    /// True for strategies with one shared loader.
    pub fn is_shared(&self) -> bool {
        !matches!(self, Strategy::NonShared)
    }
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The node.
    pub cluster: ClusterSpec,
    /// Loader cost profile.
    pub loader: LoaderSpec,
    /// Training processes.
    pub trainers: Vec<WorkloadSpec>,
    /// Data-loading discipline.
    pub strategy: Strategy,
    /// Samples each trainer must consume before the run ends.
    pub samples_per_trainer: u64,
    /// Hard stop in simulated seconds.
    pub max_sim_seconds: f64,
    /// Time-series sampling interval in seconds (0 disables).
    pub series_interval_s: f64,
    /// Per-process CUDA context VRAM.
    pub cuda_context_bytes: u64,
}

impl SimConfig {
    /// Sensible defaults around a cluster + workloads + strategy.
    pub fn new(
        cluster: ClusterSpec,
        loader: LoaderSpec,
        trainers: Vec<WorkloadSpec>,
        strategy: Strategy,
    ) -> Self {
        Self {
            cluster,
            loader,
            trainers,
            strategy,
            samples_per_trainer: 50_000,
            max_sim_seconds: 36_000.0,
            series_interval_s: 0.0,
            cuda_context_bytes: 500_000_000,
        }
    }
}

/// Per-trainer outcome.
#[derive(Debug, Clone)]
pub struct TrainerResult {
    /// Workload name.
    pub name: String,
    /// GPU trained on.
    pub gpu: usize,
    /// Samples consumed.
    pub samples: u64,
    /// Mean training throughput.
    pub samples_per_s: f64,
    /// Cumulative samples over time, `(seconds, samples)`.
    pub series: Vec<(f64, f64)>,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Wall-clock (virtual) duration in seconds.
    pub duration_s: f64,
    /// True when every trainer hit its sample target before the time cap.
    pub completed: bool,
    /// Per-trainer results.
    pub trainers: Vec<TrainerResult>,
    /// Mean busy CPU cores.
    pub cpu_busy_cores: f64,
    /// Mean CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Mean per-GPU utilization in `[0, 1]`.
    pub gpu_util: Vec<f64>,
    /// Total bytes read from storage.
    pub disk_bytes: u64,
    /// Average disk read rate, bytes/s.
    pub disk_bps: f64,
    /// Average PCIe rate per GPU, bytes/s.
    pub pcie_bps: Vec<f64>,
    /// Average NVLink rate per GPU (receive side), bytes/s.
    pub nvlink_bps: Vec<f64>,
    /// Peak VRAM per GPU, bytes.
    pub vram_peak: Vec<u64>,
    /// Whether any GPU exceeded its VRAM capacity.
    pub vram_exceeded: bool,
}

impl SimResult {
    /// Sum of per-trainer throughputs.
    pub fn aggregate_samples_per_s(&self) -> f64 {
        self.trainers.iter().map(|t| t.samples_per_s).sum()
    }

    /// Mean of per-trainer throughputs.
    pub fn mean_samples_per_s(&self) -> f64 {
        if self.trainers.is_empty() {
            return 0.0;
        }
        self.aggregate_samples_per_s() / self.trainers.len() as f64
    }
}

// ---------------------------------------------------------------------------
// engine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    CpuTick,
    DiskTick,
    GpuTick(usize),
    /// The producer's serial publish stage finished.
    PublishDone,
    Series,
}

#[derive(Debug, Clone, Copy)]
enum CpuTag {
    /// Loader worker finished pre-processing one batch.
    WorkerPre { loader: usize, worker: usize },
    /// Trainer finished its serial host stage; GPU step next.
    TrainerPre { t: usize },
    /// CoorDL distribution of a batch to consumer `t` completed.
    Dist { t: usize },
    /// Fire-and-forget overhead (producer ack handling).
    Overhead,
}

#[derive(Debug, Clone, Copy)]
enum DiskTag {
    WorkerRead { loader: usize, worker: usize },
}

#[derive(Debug, Clone, Copy)]
enum GpuTag {
    Step { t: usize },
    ProducerStage,
}

#[derive(Debug)]
struct LoaderRt {
    /// Batches still to generate.
    to_produce: u64,
    /// Batch size this loader produces.
    batch_size: usize,
    /// Effective CPU ms per sample (strategy-adjusted).
    cpu_ms_per_sample: f64,
    /// Ready batches.
    queue: usize,
    queue_cap: usize,
    /// Workers holding a finished batch because the queue is full.
    blocked: Vec<usize>,
    num_workers: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrainerState {
    /// Waiting for a batch from its source.
    Waiting,
    /// Running the serial host stage.
    HostStage,
    /// Running the GPU step.
    Step,
    /// Consumed its sample target.
    Done,
}

#[derive(Debug)]
struct TrainerRt {
    state: TrainerState,
    batches_done: u64,
    target_batches: u64,
    samples: u64,
    /// Next global seq to ack (shared strategies).
    next_ack: u64,
    /// When this trainer hit its sample target.
    finished_at: Option<Time>,
    series: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProducerState {
    Idle,
    GpuStage,
    Publishing,
}

struct Hub {
    window: BatchWindow,
    acks: AckTracker,
    /// Delivered-but-unconsumed batches per consumer.
    ports: Vec<u64>,
    producer_state: ProducerState,
    published: u64,
    to_publish: u64,
    /// VRAM bytes held per published-but-unreleased batch (producer GPU).
    batch_bytes: u64,
}

/// The simulation world.
struct World {
    cfg: SimConfig,
    sched: Scheduler<Ev>,
    cpu: PsResource<CpuTag>,
    disk: PsResource<DiskTag>,
    gpus: Vec<PsResource<GpuTag>>,
    loaders: Vec<LoaderRt>,
    trainers: Vec<TrainerRt>,
    hub: Option<Hub>,
    // traffic + memory books
    disk_bytes: u64,
    pcie_bytes: Vec<u64>,
    nvlink_bytes: Vec<u64>,
    vram_now: Vec<u64>,
    vram_peak: Vec<u64>,
    // tick tokens per resource
    cpu_token: Option<u64>,
    disk_token: Option<u64>,
    gpu_tokens: Vec<Option<u64>>,
    end_time: Option<Time>,
}

/// Runs a configuration to completion (or the time cap) and reports.
pub fn run(cfg: SimConfig) -> SimResult {
    World::new(cfg).run()
}

/// Deterministic hash of `(a, b)` mapped to `[0, 1)`.
fn unit_hash(a: u64, b: u64) -> f64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xD1B54A32D192ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl World {
    fn new(cfg: SimConfig) -> Self {
        let n = cfg.trainers.len();
        assert!(n > 0, "at least one trainer");
        for t in &cfg.trainers {
            assert!(
                t.gpu < cfg.cluster.gpus.len(),
                "trainer {} on missing GPU {}",
                t.name,
                t.gpu
            );
        }
        let sharing = match cfg.cluster.gpu_sharing {
            GpuSharing::Mps => Sharing::Fair,
            GpuSharing::Streams { penalty } => Sharing::Penalized { penalty },
        };
        let gpus: Vec<PsResource<GpuTag>> = cfg
            .cluster
            .gpus
            .iter()
            .enumerate()
            .map(|(i, _)| PsResource::new(format!("gpu{i}"), 1.0, sharing))
            .collect();
        let cpu = PsResource::new("cpu", cfg.cluster.vcpus, Sharing::Fair);
        let disk = PsResource::new("disk", 1.0, Sharing::Fair);

        // Build loaders + hub per strategy.
        let mut loaders = Vec::new();
        let mut hub = None;
        match &cfg.strategy {
            Strategy::NonShared => {
                assert!(
                    cfg.loader.num_workers >= n,
                    "need at least one worker per non-shared trainer"
                );
                // Split the worker budget as evenly as possible (uneven
                // remainders go to the first trainers, as in §4.7).
                let base = cfg.loader.num_workers / n;
                let extra = cfg.loader.num_workers % n;
                for (i, t) in cfg.trainers.iter().enumerate() {
                    let workers = base + usize::from(i < extra);
                    loaders.push(LoaderRt {
                        to_produce: cfg.samples_per_trainer.div_ceil(t.batch_size as u64),
                        batch_size: t.batch_size,
                        cpu_ms_per_sample: cfg.loader.cpu_ms_per_sample,
                        queue: 0,
                        queue_cap: cfg.loader.prefetch_batches.max(1),
                        blocked: Vec::new(),
                        num_workers: workers,
                    });
                }
            }
            shared => {
                let batch_size = cfg.trainers[0].batch_size;
                assert!(
                    cfg.trainers.iter().all(|t| t.batch_size == batch_size),
                    "shared strategies require a uniform batch size in the simulator"
                );
                let cpu_ms = match shared {
                    Strategy::Joader {
                        server_cpu_ms_per_sample_per_job,
                        ..
                    } => cfg.loader.cpu_ms_per_sample + server_cpu_ms_per_sample_per_job * n as f64,
                    _ => cfg.loader.cpu_ms_per_sample,
                };
                let to_publish = cfg.samples_per_trainer.div_ceil(batch_size as u64);
                loaders.push(LoaderRt {
                    to_produce: to_publish,
                    batch_size,
                    cpu_ms_per_sample: cpu_ms,
                    queue: 0,
                    queue_cap: cfg.loader.prefetch_batches.max(1),
                    blocked: Vec::new(),
                    num_workers: cfg.loader.num_workers,
                });
                let buffer = match shared {
                    Strategy::TensorSocket { buffer, .. } => *buffer,
                    // CoorDL's DALI pipelines prefetch too; its rigidity is
                    // the all-consumers coordination (identical here) plus
                    // the per-consumer distribution/PCIe costs below.
                    Strategy::CoorDL { .. } => 2,
                    Strategy::Joader { .. } => 2,
                    Strategy::NonShared => unreachable!(),
                };
                let mut window = BatchWindow::new(buffer);
                for t in 0..n {
                    window.add_consumer(t as u64, 0);
                }
                hub = Some(Hub {
                    window,
                    acks: AckTracker::new(),
                    ports: vec![0; n],
                    producer_state: ProducerState::Idle,
                    published: 0,
                    to_publish,
                    batch_bytes: cfg.loader.h2d_bytes_per_sample * batch_size as u64,
                });
            }
        }

        let trainers: Vec<TrainerRt> = cfg
            .trainers
            .iter()
            .map(|t| TrainerRt {
                state: TrainerState::Waiting,
                batches_done: 0,
                target_batches: cfg.samples_per_trainer.div_ceil(t.batch_size as u64),
                samples: 0,
                next_ack: 0,
                finished_at: None,
                series: vec![(0.0, 0.0)],
            })
            .collect();

        let g = cfg.cluster.gpus.len();
        let mut w = World {
            sched: Scheduler::new(),
            cpu,
            disk,
            gpus,
            loaders,
            trainers,
            hub,
            disk_bytes: 0,
            pcie_bytes: vec![0; g],
            nvlink_bytes: vec![0; g],
            vram_now: vec![0; g],
            vram_peak: vec![0; g],
            cpu_token: None,
            disk_token: None,
            gpu_tokens: vec![None; g],
            end_time: None,
            cfg,
        };
        w.account_static_vram();
        w
    }

    fn account_static_vram(&mut self) {
        let ctx_bytes = self.cfg.cuda_context_bytes;
        for t in &self.cfg.trainers {
            self.vram_now[t.gpu] += t.model_vram + ctx_bytes;
        }
        if let Strategy::TensorSocket { producer_gpu, .. } = &self.cfg.strategy {
            // The producer process holds a CUDA context of its own plus the
            // buffered batches (accounted dynamically on publish) — the
            // Table 3/4 "producer" rows.
            self.vram_now[*producer_gpu] += ctx_bytes + ctx_bytes; // context + allocator pool
        }
        for g in 0..self.vram_now.len() {
            self.vram_peak[g] = self.vram_now[g];
        }
    }

    fn alloc_vram(&mut self, gpu: usize, bytes: u64) {
        self.vram_now[gpu] += bytes;
        if self.vram_now[gpu] > self.vram_peak[gpu] {
            self.vram_peak[gpu] = self.vram_now[gpu];
        }
    }

    fn free_vram(&mut self, gpu: usize, bytes: u64) {
        self.vram_now[gpu] = self.vram_now[gpu].saturating_sub(bytes);
    }

    // ---- loader mechanics -------------------------------------------------

    /// Starts worker `w` of loader `l` on its next batch, if any remain.
    fn worker_start(&mut self, l: usize, w: usize) {
        let now = self.sched.now();
        let loader = &mut self.loaders[l];
        if loader.to_produce == 0 {
            return;
        }
        loader.to_produce -= 1;
        let bytes = self.cfg.loader.disk_bytes_per_sample * loader.batch_size as u64;
        self.disk_bytes += bytes;
        let read_s = bytes as f64 / self.cfg.cluster.disk_read_bps;
        self.disk.add(
            now,
            read_s,
            1.0,
            DiskTag::WorkerRead {
                loader: l,
                worker: w,
            },
        );
    }

    fn on_worker_read_done(&mut self, l: usize, w: usize) {
        let now = self.sched.now();
        let loader = &self.loaders[l];
        let work_s = loader.cpu_ms_per_sample * loader.batch_size as f64 / 1e3;
        self.cpu.add(
            now,
            work_s,
            1.0,
            CpuTag::WorkerPre {
                loader: l,
                worker: w,
            },
        );
    }

    fn on_worker_pre_done(&mut self, l: usize, w: usize) {
        let loader = &mut self.loaders[l];
        if loader.queue < loader.queue_cap {
            loader.queue += 1;
            self.worker_start(l, w);
            self.notify_batch_ready(l);
        } else {
            loader.blocked.push(w);
        }
    }

    /// Consumes one ready batch from loader `l`, unblocking a worker.
    fn pop_batch(&mut self, l: usize) {
        let loader = &mut self.loaders[l];
        debug_assert!(loader.queue > 0);
        loader.queue -= 1;
        if let Some(w) = self.loaders[l].blocked.pop() {
            self.loaders[l].queue += 1;
            self.worker_start(l, w);
        }
    }

    fn notify_batch_ready(&mut self, l: usize) {
        if self.hub.is_some() {
            self.producer_try();
        } else {
            // non-shared: loader l feeds trainer l
            self.trainer_try_consume(l);
        }
    }

    // ---- shared hub mechanics ----------------------------------------------

    fn producer_try(&mut self) {
        loop {
            let Some(hub) = self.hub.as_ref() else {
                return;
            };
            if hub.producer_state != ProducerState::Idle {
                return;
            }
            if hub.published >= hub.to_publish {
                return;
            }
            if !hub.window.can_publish() {
                return;
            }
            if self.loaders[0].queue == 0 {
                return;
            }
            self.pop_batch(0);
            let producer_gpu_work = match &self.cfg.strategy {
                Strategy::TensorSocket {
                    producer_gpu,
                    producer_gpu_ms_per_sample,
                    ..
                } if *producer_gpu_ms_per_sample > 0.0 => {
                    Some((*producer_gpu, *producer_gpu_ms_per_sample))
                }
                _ => None,
            };
            match producer_gpu_work {
                Some((gpu, ms)) => {
                    let now = self.sched.now();
                    let rel = self.cfg.cluster.gpus[gpu].relative_throughput;
                    let work_s = ms * self.loaders[0].batch_size as f64 / 1e3 / rel;
                    self.gpus[gpu].add(now, work_s, 1.0, GpuTag::ProducerStage);
                    self.hub.as_mut().unwrap().producer_state = ProducerState::GpuStage;
                    return;
                }
                None => {
                    if self.start_publish() {
                        return; // serial publish latency in flight
                    }
                    // loop: maybe more can be published right away
                }
            }
        }
    }

    /// Begins the serial publish stage. Returns true when latency was
    /// scheduled (the publish completes at `Ev::PublishDone`); false when
    /// the publish happened synchronously.
    fn start_publish(&mut self) -> bool {
        let latency_ms = match &self.cfg.strategy {
            Strategy::TensorSocket {
                publish_latency_ms, ..
            } => *publish_latency_ms,
            _ => 0.0,
        };
        if latency_ms > 0.0 {
            self.hub.as_mut().unwrap().producer_state = ProducerState::Publishing;
            self.sched
                .schedule_after((latency_ms * 1e6) as Time, Ev::PublishDone);
            true
        } else {
            self.publish();
            false
        }
    }

    fn on_publish_done(&mut self) {
        self.hub.as_mut().unwrap().producer_state = ProducerState::Idle;
        self.publish();
        self.producer_try();
    }

    fn on_producer_stage_done(&mut self) {
        self.hub.as_mut().unwrap().producer_state = ProducerState::Idle;
        if !self.start_publish() {
            self.producer_try();
        }
    }

    fn publish(&mut self) {
        let now = self.sched.now();
        let n = self.trainers.len();
        let batch = self.loaders[0].batch_size;
        let h2d = self.cfg.loader.h2d_bytes_per_sample * batch as u64;
        let strategy = self.cfg.strategy.clone();
        let hub = self.hub.as_mut().expect("publish requires a hub");
        let seq = hub.window.published();
        hub.published += 1;
        hub.acks.published(seq, (0..n as u64).collect::<Vec<_>>());
        match &strategy {
            Strategy::TensorSocket {
                producer_gpu,
                producer_cpu_ms_per_batch_per_consumer,
                ..
            } => {
                let producer_gpu = *producer_gpu;
                // Stage once over PCIe onto the producer GPU...
                self.pcie_bytes[producer_gpu] += h2d;
                self.alloc_vram(producer_gpu, h2d);
                // ...fan out over NVLink to each distinct consumer GPU.
                let consumer_gpus: Vec<usize> = self.cfg.trainers.iter().map(|t| t.gpu).collect();
                let mut seen = vec![false; self.cfg.cluster.gpus.len()];
                for g in consumer_gpus {
                    if g != producer_gpu && !seen[g] {
                        seen[g] = true;
                        self.nvlink_bytes[g] += h2d;
                        self.alloc_vram(g, h2d);
                    }
                }
                // Small producer-side CPU overhead per consumer.
                let overhead_s = producer_cpu_ms_per_batch_per_consumer * n as f64 / 1e3;
                if overhead_s > 0.0 {
                    self.cpu.add(now, overhead_s, 1.0, CpuTag::Overhead);
                }
                let hub = self.hub.as_mut().unwrap();
                for p in hub.ports.iter_mut() {
                    *p += 1;
                }
                for t in 0..n {
                    self.trainer_try_consume(t);
                }
            }
            Strategy::CoorDL {
                dist_cpu_ms_per_sample_per_consumer,
            } => {
                // Distribution: one CPU job per consumer; the consumer's
                // batch becomes available when its job completes.
                let work_s = dist_cpu_ms_per_sample_per_consumer * batch as f64 / 1e3;
                for t in 0..n {
                    self.cpu.add(now, work_s, 1.0, CpuTag::Dist { t });
                }
            }
            Strategy::Joader { .. } => {
                let hub = self.hub.as_mut().unwrap();
                for p in hub.ports.iter_mut() {
                    *p += 1;
                }
                for t in 0..n {
                    self.trainer_try_consume(t);
                }
            }
            Strategy::NonShared => unreachable!(),
        }
    }

    fn on_dist_done(&mut self, t: usize) {
        let h2d = {
            let batch = self.loaders[0].batch_size;
            self.cfg.loader.h2d_bytes_per_sample * batch as u64
        };
        // CoorDL delivers over the consumer's own PCIe link.
        let gpu = self.cfg.trainers[t].gpu;
        self.pcie_bytes[gpu] += h2d;
        self.alloc_vram(gpu, h2d);
        self.hub.as_mut().unwrap().ports[t] += 1;
        self.trainer_try_consume(t);
    }

    // ---- trainer mechanics --------------------------------------------------

    fn trainer_try_consume(&mut self, t: usize) {
        if self.trainers[t].state != TrainerState::Waiting {
            return;
        }
        let has_batch = match &self.hub {
            Some(hub) => hub.ports[t] > 0,
            None => self.loaders[t].queue > 0,
        };
        if !has_batch {
            return;
        }
        let spec = self.cfg.trainers[t].clone();
        match self.hub.as_mut() {
            Some(hub) => {
                hub.ports[t] -= 1;
            }
            None => {
                self.pop_batch(t);
                // Non-shared: every trainer ships its own copy over PCIe.
                let h2d = self.cfg.loader.h2d_bytes_per_sample * spec.batch_size as u64;
                self.pcie_bytes[spec.gpu] += h2d;
            }
        }
        if matches!(self.cfg.strategy, Strategy::Joader { .. }) {
            // Joader delivers NumPy arrays; the consumer converts and ships
            // to its GPU itself.
            let h2d = self.cfg.loader.h2d_bytes_per_sample * spec.batch_size as u64;
            self.pcie_bytes[spec.gpu] += h2d;
        }
        let now = self.sched.now();
        let convert_ms = match &self.cfg.strategy {
            Strategy::Joader {
                convert_cpu_ms_per_sample,
                ..
            } => *convert_cpu_ms_per_sample,
            _ => 0.0,
        } + spec.pre_gpu_cpu_ms_per_sample;
        if convert_ms > 0.0 {
            let work_s = convert_ms * spec.batch_size as f64 / 1e3;
            self.trainers[t].state = TrainerState::HostStage;
            self.cpu.add(now, work_s, 1.0, CpuTag::TrainerPre { t });
        } else {
            self.start_gpu_step(t);
        }
    }

    fn start_gpu_step(&mut self, t: usize) {
        let now = self.sched.now();
        let spec = &self.cfg.trainers[t];
        let rel = self.cfg.cluster.gpus[spec.gpu].relative_throughput;
        let mut work_s = spec.gpu_ms_per_sample * spec.batch_size as f64 / 1e3 / rel;
        if spec.gpu_jitter_frac > 0.0 {
            // Deterministic per-(trainer, batch) factor in [1-j, 1+j]; the
            // mean is 1 so long-run rates stay calibrated.
            let u = unit_hash(t as u64, self.trainers[t].batches_done);
            work_s *= 1.0 + spec.gpu_jitter_frac * (2.0 * u - 1.0);
        }
        self.trainers[t].state = TrainerState::Step;
        self.gpus[spec.gpu].add(now, work_s, 1.0, GpuTag::Step { t });
    }

    fn on_step_done(&mut self, t: usize) {
        let spec = self.cfg.trainers[t].clone();
        self.pcie_bytes[spec.gpu] += spec.extra_pcie_bytes_per_sample * spec.batch_size as u64;
        let rt = &mut self.trainers[t];
        rt.batches_done += 1;
        rt.samples += spec.batch_size as u64;
        rt.state = TrainerState::Waiting;
        // Acknowledge to the hub (shared strategies) and release memory once
        // everyone acked — the AckTracker from the real protocol.
        let mut fully_acked: Option<u64> = None;
        if let Some(hub) = self.hub.as_mut() {
            let seq = self.trainers[t].next_ack;
            self.trainers[t].next_ack += 1;
            hub.window.on_ack(t as u64, seq);
            if hub.acks.on_ack(t as u64, seq) {
                fully_acked = Some(seq);
            }
        }
        if let Some(_seq) = fully_acked {
            let (bytes, producer_gpu) = {
                let hub = self.hub.as_ref().unwrap();
                let pg = match &self.cfg.strategy {
                    Strategy::TensorSocket { producer_gpu, .. } => Some(*producer_gpu),
                    _ => None,
                };
                (hub.batch_bytes, pg)
            };
            let trainer_gpus: Vec<usize> = self.cfg.trainers.iter().map(|tr| tr.gpu).collect();
            if let Some(pg) = producer_gpu {
                self.free_vram(pg, bytes);
                let mut seen = vec![false; self.cfg.cluster.gpus.len()];
                for g in trainer_gpus {
                    if g != pg && !seen[g] {
                        seen[g] = true;
                        self.free_vram(g, bytes);
                    }
                }
            } else if matches!(self.cfg.strategy, Strategy::CoorDL { .. }) {
                let mut seen = vec![false; self.cfg.cluster.gpus.len()];
                for g in trainer_gpus {
                    if !seen[g] {
                        seen[g] = true;
                        self.free_vram(g, bytes);
                    }
                }
            }
        }
        if self.trainers[t].batches_done >= self.trainers[t].target_batches {
            self.trainers[t].state = TrainerState::Done;
            self.trainers[t].finished_at = Some(self.sched.now());
        } else {
            self.trainer_try_consume(t);
        }
        // A freed window slot may let the producer move.
        if self.hub.is_some() {
            self.producer_try();
        }
        if self.trainers.iter().all(|x| x.state == TrainerState::Done) {
            self.end_time = Some(self.sched.now());
        }
    }

    // ---- event loop ----------------------------------------------------------

    fn reschedule_ticks(&mut self) {
        let now = self.sched.now();
        if let Some(tok) = self.cpu_token.take() {
            self.sched.cancel(tok);
        }
        if let Some(t) = self.cpu.next_completion(now) {
            if t < FOREVER {
                self.cpu_token = Some(self.sched.schedule_at(t, Ev::CpuTick));
            }
        }
        if let Some(tok) = self.disk_token.take() {
            self.sched.cancel(tok);
        }
        if let Some(t) = self.disk.next_completion(now) {
            if t < FOREVER {
                self.disk_token = Some(self.sched.schedule_at(t, Ev::DiskTick));
            }
        }
        for g in 0..self.gpus.len() {
            if let Some(tok) = self.gpu_tokens[g].take() {
                self.sched.cancel(tok);
            }
            if let Some(t) = self.gpus[g].next_completion(now) {
                if t < FOREVER {
                    self.gpu_tokens[g] = Some(self.sched.schedule_at(t, Ev::GpuTick(g)));
                }
            }
        }
    }

    fn settle_and_dispatch(&mut self) {
        let now = self.sched.now();
        loop {
            // Settle every resource to `now` *first*: handlers may add jobs
            // to any resource, which requires it to be settled already.
            let cpu_tags = self.cpu.settle(now);
            let disk_tags = self.disk.settle(now);
            let mut gpu_tags = Vec::with_capacity(self.gpus.len());
            for g in self.gpus.iter_mut() {
                gpu_tags.push(g.settle(now));
            }
            let fired = !cpu_tags.is_empty()
                || !disk_tags.is_empty()
                || gpu_tags.iter().any(|v| !v.is_empty());
            if !fired {
                break;
            }
            for tag in cpu_tags {
                match tag {
                    CpuTag::WorkerPre { loader, worker } => self.on_worker_pre_done(loader, worker),
                    CpuTag::TrainerPre { t } => self.start_gpu_step(t),
                    CpuTag::Dist { t } => self.on_dist_done(t),
                    CpuTag::Overhead => {}
                }
            }
            for DiskTag::WorkerRead { loader, worker } in disk_tags {
                self.on_worker_read_done(loader, worker);
            }
            for tags in gpu_tags {
                for tag in tags {
                    match tag {
                        GpuTag::Step { t } => self.on_step_done(t),
                        GpuTag::ProducerStage => self.on_producer_stage_done(),
                    }
                }
            }
        }
    }

    fn record_series(&mut self) {
        let now_s = self.sched.now() as f64 / 1e9;
        for rt in self.trainers.iter_mut() {
            rt.series.push((now_s, rt.samples as f64));
        }
    }

    fn run(mut self) -> SimResult {
        // Prime everything at t=0.
        self.cpu.settle(0);
        self.disk.settle(0);
        for g in 0..self.gpus.len() {
            self.gpus[g].settle(0);
        }
        for l in 0..self.loaders.len() {
            for w in 0..self.loaders[l].num_workers {
                self.worker_start(l, w);
            }
        }
        if self.cfg.series_interval_s > 0.0 {
            let dt = (self.cfg.series_interval_s * 1e9) as Time;
            self.sched.schedule_after(dt, Ev::Series);
        }
        let horizon = (self.cfg.max_sim_seconds * 1e9) as Time;
        self.reschedule_ticks();
        while let Some((now, ev)) = self.sched.pop() {
            if now > horizon {
                break;
            }
            match ev {
                Ev::Series => {
                    self.settle_and_dispatch();
                    self.record_series();
                    if self.end_time.is_none() {
                        let dt = (self.cfg.series_interval_s * 1e9) as Time;
                        self.sched.schedule_after(dt, Ev::Series);
                    }
                }
                Ev::PublishDone => {
                    self.settle_and_dispatch();
                    self.on_publish_done();
                }
                Ev::CpuTick | Ev::DiskTick | Ev::GpuTick(_) => {
                    self.settle_and_dispatch();
                }
            }
            if self.end_time.is_some() {
                break;
            }
            self.reschedule_ticks();
        }
        self.finish()
    }

    fn finish(mut self) -> SimResult {
        let end = self.end_time.unwrap_or(self.sched.now()).max(1);
        self.record_series();
        let duration_s = end as f64 / 1e9;
        let trainers: Vec<TrainerResult> = self
            .cfg
            .trainers
            .iter()
            .zip(&self.trainers)
            .map(|(spec, rt)| {
                // Throughput over the trainer's own active span: a trainer
                // that hit its target early must not be diluted by slower
                // peers still running (the paper reports per-model rates).
                let own_s = rt.finished_at.unwrap_or(end).max(1) as f64 / 1e9;
                TrainerResult {
                    name: spec.name.clone(),
                    gpu: spec.gpu,
                    samples: rt.samples,
                    samples_per_s: rt.samples as f64 / own_s,
                    series: rt.series.clone(),
                }
            })
            .collect();
        let vram_exceeded = self
            .vram_peak
            .iter()
            .zip(&self.cfg.cluster.gpus)
            .any(|(used, g)| *used > g.vram_bytes);
        SimResult {
            duration_s,
            completed: self.end_time.is_some(),
            trainers,
            cpu_busy_cores: self.cpu.mean_busy(end),
            cpu_util: self.cpu.utilization(end),
            gpu_util: self.gpus.iter().map(|g| g.utilization(end)).collect(),
            disk_bytes: self.disk_bytes,
            disk_bps: self.disk_bytes as f64 / duration_s,
            pcie_bps: self
                .pcie_bytes
                .iter()
                .map(|b| *b as f64 / duration_s)
                .collect(),
            nvlink_bps: self
                .nvlink_bytes
                .iter()
                .map(|b| *b as f64 / duration_s)
                .collect(),
            vram_peak: self.vram_peak,
            vram_exceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(rel: f64) -> GpuConfig {
        GpuConfig {
            relative_throughput: rel,
            vram_bytes: 40_000_000_000,
        }
    }

    fn cluster(vcpus: f64, gpus: usize, rel: f64) -> ClusterSpec {
        ClusterSpec {
            name: "test".to_string(),
            vcpus,
            gpus: (0..gpus).map(|_| gpu(rel)).collect(),
            gpu_sharing: GpuSharing::Mps,
            disk_read_bps: 10e9,
            nvlink: true,
        }
    }

    fn loader(cpu_ms: f64, workers: usize) -> LoaderSpec {
        LoaderSpec {
            cpu_ms_per_sample: cpu_ms,
            disk_bytes_per_sample: 100_000,
            h2d_bytes_per_sample: 150_000,
            num_workers: workers,
            prefetch_batches: 2,
        }
    }

    fn quick(cfg: &mut SimConfig) {
        cfg.samples_per_trainer = 4096;
        cfg.max_sim_seconds = 10_000.0;
    }

    #[test]
    fn cpu_bound_nonshared_matches_analytic_rate() {
        // 8 workers, 5 ms/sample → 1600 samples/s loading capacity;
        // GPU can do 10000/s → loader-bound.
        let mut cfg = SimConfig::new(
            cluster(8.0, 1, 1.0),
            loader(5.0, 8),
            vec![WorkloadSpec::new("m", 0, 64, 0.1)],
            Strategy::NonShared,
        );
        quick(&mut cfg);
        let r = run(cfg);
        assert!(r.completed);
        let rate = r.trainers[0].samples_per_s;
        assert!((rate - 1600.0).abs() < 80.0, "rate {rate}");
        // CPU saturated
        assert!(r.cpu_util > 0.95, "cpu util {}", r.cpu_util);
        assert!(r.gpu_util[0] < 0.35);
    }

    #[test]
    fn gpu_bound_nonshared_matches_analytic_rate() {
        // GPU: 1 ms/sample → 1000 samples/s; loader capacity 3200/s.
        let mut cfg = SimConfig::new(
            cluster(16.0, 1, 1.0),
            loader(5.0, 16),
            vec![WorkloadSpec::new("m", 0, 64, 1.0)],
            Strategy::NonShared,
        );
        quick(&mut cfg);
        cfg.samples_per_trainer = 65_536; // long enough to amortize warmup
        let r = run(cfg);
        let rate = r.trainers[0].samples_per_s;
        assert!((rate - 1000.0).abs() < 20.0, "rate {rate}");
        assert!(r.gpu_util[0] > 0.9, "gpu util {:?}", r.gpu_util);
    }

    #[test]
    fn sharing_removes_the_cpu_bottleneck() {
        // 2 trainers on 2 GPUs, 8 workers, heavy preprocess: non-shared
        // splits workers (800/s each); shared loads once (1600/s capacity,
        // GPU-bound at 1000/s each).
        let trainers = vec![
            WorkloadSpec::new("a", 0, 64, 1.0),
            WorkloadSpec::new("b", 1, 64, 1.0),
        ];
        let mut ns = SimConfig::new(
            cluster(8.0, 2, 1.0),
            loader(5.0, 8),
            trainers.clone(),
            Strategy::NonShared,
        );
        quick(&mut ns);
        ns.samples_per_trainer = 65_536;
        let mut ts = SimConfig::new(
            cluster(8.0, 2, 1.0),
            loader(5.0, 8),
            trainers,
            Strategy::tensorsocket(),
        );
        quick(&mut ts);
        ts.samples_per_trainer = 65_536;
        let r_ns = run(ns);
        let r_ts = run(ts);
        let ns_rate = r_ns.trainers[0].samples_per_s;
        let ts_rate = r_ts.trainers[0].samples_per_s;
        assert!((ns_rate - 800.0).abs() < 60.0, "non-shared {ns_rate}");
        assert!((ts_rate - 1000.0).abs() < 60.0, "shared {ts_rate}");
        // Shared does the preprocessing once → lower CPU use despite the
        // higher throughput.
        assert!(r_ts.cpu_busy_cores < r_ns.cpu_busy_cores);
        // Shared moves data once over PCIe and fans out over NVLink.
        assert!(r_ts.nvlink_bps[1] > 0.0);
        assert_eq!(r_ns.nvlink_bps[1], 0.0);
        assert!(r_ts.pcie_bps[1] < 1.0);
        assert!(r_ns.pcie_bps[1] > 0.0);
        // Disk read once instead of twice.
        assert!(
            r_ts.disk_bytes * 2 <= r_ns.disk_bytes + 1_000_000_000,
            "disk {} vs {}",
            r_ts.disk_bytes,
            r_ns.disk_bytes
        );
    }

    #[test]
    fn mps_collocation_shares_gpu_fairly() {
        // 2 identical trainers on ONE GPU: each gets half the SMs.
        let trainers = vec![
            WorkloadSpec::new("a", 0, 64, 1.0),
            WorkloadSpec::new("b", 0, 64, 1.0),
        ];
        let mut cfg = SimConfig::new(
            cluster(16.0, 1, 1.0),
            loader(1.0, 16),
            trainers,
            Strategy::tensorsocket(),
        );
        quick(&mut cfg);
        let r = run(cfg);
        for t in &r.trainers {
            assert!(
                (t.samples_per_s - 500.0).abs() < 40.0,
                "{}",
                t.samples_per_s
            );
        }
        assert!(r.gpu_util[0] > 0.95);
    }

    #[test]
    fn streams_sharing_is_slower_than_mps() {
        let trainers = vec![
            WorkloadSpec::new("a", 0, 64, 1.0),
            WorkloadSpec::new("b", 0, 64, 1.0),
        ];
        let mut mps = SimConfig::new(
            cluster(16.0, 1, 1.0),
            loader(1.0, 16),
            trainers.clone(),
            Strategy::tensorsocket(),
        );
        quick(&mut mps);
        let mut streams = SimConfig::new(
            ClusterSpec {
                gpu_sharing: GpuSharing::Streams { penalty: 0.1 },
                ..cluster(16.0, 1, 1.0)
            },
            loader(1.0, 16),
            trainers,
            Strategy::tensorsocket(),
        );
        quick(&mut streams);
        let r_mps = run(mps);
        let r_streams = run(streams);
        assert!(
            r_streams.trainers[0].samples_per_s < r_mps.trainers[0].samples_per_s * 0.95,
            "streams {} vs mps {}",
            r_streams.trainers[0].samples_per_s,
            r_mps.trainers[0].samples_per_s
        );
    }

    #[test]
    fn lockstep_balances_mixed_models() {
        // A light and a heavy model on one GPU share a TensorSocket: the
        // window forces equal rates; PS gives the heavy model more SM time.
        let trainers = vec![
            WorkloadSpec::new("light", 0, 64, 0.5),
            WorkloadSpec::new("heavy", 0, 64, 1.5),
        ];
        let mut cfg = SimConfig::new(
            cluster(16.0, 1, 1.0),
            loader(1.0, 16),
            trainers,
            Strategy::tensorsocket(),
        );
        quick(&mut cfg);
        let r = run(cfg);
        let light = r.trainers[0].samples_per_s;
        let heavy = r.trainers[1].samples_per_s;
        assert!(
            (light - heavy).abs() / heavy < 0.05,
            "lockstep rates diverge: {light} vs {heavy}"
        );
        // equilibrium: r*(0.5+1.5)ms = 1s → r = 500/s each
        assert!((heavy - 500.0).abs() < 40.0, "heavy {heavy}");
    }

    #[test]
    fn coordl_costs_cpu_per_consumer_and_uses_pcie() {
        let trainers = vec![
            WorkloadSpec::new("a", 0, 64, 1.0),
            WorkloadSpec::new("b", 1, 64, 1.0),
        ];
        let mut ts = SimConfig::new(
            cluster(16.0, 2, 1.0),
            loader(2.0, 8),
            trainers.clone(),
            Strategy::tensorsocket(),
        );
        quick(&mut ts);
        let mut coordl = SimConfig::new(
            cluster(16.0, 2, 1.0),
            loader(2.0, 8),
            trainers,
            Strategy::CoorDL {
                dist_cpu_ms_per_sample_per_consumer: 1.0,
            },
        );
        quick(&mut coordl);
        let r_ts = run(ts);
        let r_co = run(coordl);
        assert!(r_co.cpu_busy_cores > r_ts.cpu_busy_cores);
        // CoorDL ships per-consumer over PCIe, no NVLink
        assert!(r_co.pcie_bps[1] > 0.0);
        assert_eq!(r_co.nvlink_bps[1], 0.0);
        assert!(r_ts.nvlink_bps[1] > 0.0);
    }

    #[test]
    fn joader_throughput_degrades_with_jobs() {
        let mk = |n: usize| {
            let trainers: Vec<WorkloadSpec> = (0..n)
                .map(|i| WorkloadSpec::new(&format!("m{i}"), 0, 64, 0.05))
                .collect();
            let mut cfg = SimConfig::new(
                cluster(8.0, 1, 2.0),
                loader(5.0, 8),
                trainers,
                Strategy::Joader {
                    server_cpu_ms_per_sample_per_job: 2.0,
                    convert_cpu_ms_per_sample: 0.0,
                },
            );
            quick(&mut cfg);
            run(cfg)
        };
        let r1 = mk(1);
        let r4 = mk(4);
        let per_model_1 = r1.trainers[0].samples_per_s;
        let per_model_4 = r4.trainers[0].samples_per_s;
        // n=1: 8/(5+2) ms → ~1143/s; n=4: 8/(5+8) → ~615/s
        assert!((per_model_1 - 1143.0).abs() < 80.0, "{per_model_1}");
        assert!((per_model_4 - 615.0).abs() < 60.0, "{per_model_4}");
    }

    #[test]
    fn disk_bottleneck_caps_loading() {
        let mut cfg = SimConfig::new(
            ClusterSpec {
                disk_read_bps: 100e6, // 100 MB/s
                ..cluster(16.0, 1, 1.0)
            },
            loader(0.5, 8),
            vec![WorkloadSpec::new("m", 0, 64, 0.1)],
            Strategy::NonShared,
        );
        quick(&mut cfg);
        let r = run(cfg);
        // 100 MB/s over 100 KB samples → 1000 samples/s max
        assert!(r.trainers[0].samples_per_s < 1050.0);
        assert!(r.disk_bps < 105e6);
        assert!(r.disk_bps > 90e6);
    }

    #[test]
    fn series_records_progress() {
        let mut cfg = SimConfig::new(
            cluster(8.0, 1, 1.0),
            loader(2.0, 8),
            vec![WorkloadSpec::new("m", 0, 64, 0.5)],
            Strategy::NonShared,
        );
        quick(&mut cfg);
        cfg.series_interval_s = 0.5;
        let r = run(cfg);
        let series = &r.trainers[0].series;
        assert!(series.len() >= 3);
        // cumulative and non-decreasing
        assert!(series.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(series.last().unwrap().1, 4096.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let trainers = vec![
                WorkloadSpec::new("a", 0, 32, 0.7),
                WorkloadSpec::new("b", 1, 32, 1.3),
            ];
            let mut cfg = SimConfig::new(
                cluster(6.0, 2, 1.0),
                loader(3.0, 6),
                trainers,
                Strategy::tensorsocket(),
            );
            quick(&mut cfg);
            run(cfg)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.cpu_busy_cores, b.cpu_busy_cores);
        assert_eq!(a.disk_bytes, b.disk_bytes);
        for (x, y) in a.trainers.iter().zip(&b.trainers) {
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn vram_accounting_flags_oversubscription() {
        let mut spec = WorkloadSpec::new("big", 0, 64, 1.0);
        spec.model_vram = 39_000_000_000;
        let trainers = vec![
            spec.clone(),
            WorkloadSpec {
                name: "big2".into(),
                ..spec
            },
        ];
        let mut cfg = SimConfig::new(
            cluster(8.0, 1, 1.0),
            loader(1.0, 8),
            trainers,
            Strategy::tensorsocket(),
        );
        quick(&mut cfg);
        let r = run(cfg);
        assert!(r.vram_exceeded);
        assert!(r.vram_peak[0] > 78_000_000_000);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    fn one_gpu_cluster() -> ClusterSpec {
        ClusterSpec {
            name: "t".into(),
            vcpus: 16.0,
            gpus: vec![GpuConfig {
                relative_throughput: 1.0,
                vram_bytes: 40_000_000_000,
            }],
            gpu_sharing: GpuSharing::Mps,
            disk_read_bps: 10e9,
            nvlink: false,
        }
    }

    fn loader() -> LoaderSpec {
        LoaderSpec {
            cpu_ms_per_sample: 0.5,
            disk_bytes_per_sample: 1_000,
            h2d_bytes_per_sample: 1_000,
            num_workers: 8,
            prefetch_batches: 2,
        }
    }

    fn ts_with(buffer: usize, latency_ms: f64) -> Strategy {
        Strategy::TensorSocket {
            buffer,
            producer_gpu: 0,
            producer_gpu_ms_per_sample: 0.0,
            producer_cpu_ms_per_batch_per_consumer: 0.0,
            publish_latency_ms: latency_ms,
        }
    }

    #[test]
    fn publish_latency_exposed_only_at_buffer_one() {
        // GPU step: 64 samples × 1 ms = 64 ms; latency 16 ms.
        let run_with = |buffer: usize| {
            let mut cfg = SimConfig::new(
                one_gpu_cluster(),
                loader(),
                vec![WorkloadSpec::new("m", 0, 64, 1.0)],
                ts_with(buffer, 16.0),
            );
            cfg.samples_per_trainer = 64 * 500;
            run(cfg).mean_samples_per_s()
        };
        let n1 = run_with(1);
        let n2 = run_with(2);
        // N=1: cycle 64+16 ms → 800/s; N=2: latency hidden → 1000/s
        assert!((n1 - 800.0).abs() < 25.0, "N=1 {n1}");
        assert!((n2 - 1000.0).abs() < 25.0, "N=2 {n2}");
    }

    #[test]
    fn zero_latency_matches_buffer_one_and_two() {
        let run_with = |buffer: usize| {
            let mut cfg = SimConfig::new(
                one_gpu_cluster(),
                loader(),
                vec![WorkloadSpec::new("m", 0, 64, 1.0)],
                ts_with(buffer, 0.0),
            );
            cfg.samples_per_trainer = 64 * 200;
            run(cfg).mean_samples_per_s()
        };
        let n1 = run_with(1);
        let n2 = run_with(2);
        assert!((n1 - n2).abs() / n2 < 0.02, "{n1} vs {n2}");
    }

    #[test]
    fn jitter_preserves_mean_rate_when_not_window_bound() {
        let run_with = |jitter: f64| {
            let mut spec = WorkloadSpec::new("m", 0, 64, 1.0);
            spec.gpu_jitter_frac = jitter;
            let mut cfg = SimConfig::new(one_gpu_cluster(), loader(), vec![spec], ts_with(4, 0.0));
            cfg.samples_per_trainer = 64 * 1000;
            run(cfg).mean_samples_per_s()
        };
        let flat = run_with(0.0);
        let jittery = run_with(0.3);
        // the jitter factor has mean 1 → long-run rate within a few percent
        assert!((jittery - flat).abs() / flat < 0.03, "{flat} vs {jittery}");
    }

    #[test]
    fn jitter_is_deterministic() {
        let run_once = || {
            let mut spec = WorkloadSpec::new("m", 0, 32, 1.0);
            spec.gpu_jitter_frac = 0.5;
            let mut cfg = SimConfig::new(one_gpu_cluster(), loader(), vec![spec], ts_with(2, 1.0));
            cfg.samples_per_trainer = 32 * 100;
            run(cfg)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.trainers[0].samples, b.trainers[0].samples);
    }

    #[test]
    fn unit_hash_is_uniform_ish_and_stable() {
        let mut sum = 0.0;
        for i in 0..1000u64 {
            let u = unit_hash(3, i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert_eq!(unit_hash(1, 2), unit_hash(1, 2));
        assert_ne!(unit_hash(1, 2), unit_hash(2, 1));
    }
}
