//! The discrete-event scheduler.
//!
//! Time is `u64` nanoseconds. Events are plain values; the world pops them
//! one at a time and mutates itself. Ties break by insertion order, which
//! makes runs fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One nanosecond shy of forever; used as a guard horizon.
pub const FOREVER: Time = u64::MAX - 1;

/// A deterministic event queue.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `ev` at absolute time `t` (clamped to now), returning a
    /// token usable with [`Scheduler::cancel`].
    pub fn schedule_at(&mut self, t: Time, ev: E) -> u64 {
        let t = t.max(self.now);
        let token = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((t, token)));
        self.payloads.insert(token, ev);
        token
    }

    /// Schedules `ev` after `dt` nanoseconds.
    pub fn schedule_after(&mut self, dt: Time, ev: E) -> u64 {
        self.schedule_at(self.now.saturating_add(dt), ev)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or unknown
    /// token is a no-op.
    pub fn cancel(&mut self, token: u64) {
        self.payloads.remove(&token);
    }

    /// Pops the next event, advancing time to it. Returns `None` when the
    /// queue is exhausted.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse((t, token))) = self.heap.pop() {
            if let Some(ev) = self.payloads.remove(&token) {
                debug_assert!(t >= self.now, "time went backwards");
                self.now = t;
                return Some((t, ev));
            }
            // cancelled; skip
        }
        None
    }

    /// Events currently pending (excluding cancelled).
    pub fn pending(&self) -> usize {
        self.payloads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(10, "b");
        s.schedule_at(5, "a");
        s.schedule_at(10, "c");
        assert_eq!(s.pop().unwrap(), (5, "a"));
        assert_eq!(s.pop().unwrap(), (10, "b"));
        assert_eq!(s.pop().unwrap(), (10, "c"));
        assert!(s.pop().is_none());
        assert_eq!(s.now(), 10);
    }

    #[test]
    fn cancel_skips_event() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t1 = s.schedule_at(1, 1);
        s.schedule_at(2, 2);
        s.cancel(t1);
        assert_eq!(s.pop().unwrap(), (2, 2));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(100, 1);
        s.pop();
        s.schedule_at(50, 2); // clamped to 100
        assert_eq!(s.pop().unwrap(), (100, 2));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(10, 1);
        s.pop();
        s.schedule_after(5, 2);
        assert_eq!(s.pop().unwrap(), (15, 2));
    }
}
