#![warn(missing_docs)]

//! Virtual-time cluster simulator for the TensorSocket evaluation.
//!
//! The paper's experiments measure where the bottleneck sits — CPU-side
//! loading vs GPU compute — across hardware configurations we do not have
//! (A100/H100 servers, AWS g5 instances). This crate reproduces those
//! regimes with a deterministic discrete-event simulation:
//!
//! * [`des`] — an event scheduler over nanosecond virtual time;
//! * [`ps`] — processor-sharing resources (CPU core pools, GPUs under MPS
//!   or multi-stream sharing, disk bandwidth) with exact time-weighted
//!   utilization accounting;
//! * [`cluster`] — the world model: multi-worker loader pipelines,
//!   training processes, and the four data-loading disciplines evaluated in
//!   the paper (non-shared, TensorSocket, CoorDL-like, Joader-like).
//!
//! The sharing protocol inside the simulator is not a re-implementation:
//! the producer/consumer window is the same [`tensorsocket::BatchWindow`]
//! state machine the threaded runtime executes, so the evaluated protocol
//! and the shipped protocol cannot diverge.
//!
//! Everything is deterministic: the same [`cluster::SimConfig`] always
//! produces bit-identical results.

pub mod cluster;
pub mod des;
pub mod ps;

pub use cluster::{
    run, ClusterSpec, GpuConfig, GpuSharing, LoaderSpec, SimConfig, SimResult, Strategy,
    TrainerResult, WorkloadSpec,
};
pub use des::Scheduler;
pub use ps::PsResource;
