//! The multi-worker, prefetching `DataLoader`.
//!
//! Reproduces the PyTorch `DataLoader` behaviours TensorSocket builds on
//! (§2 "Alleviating the bottlenecks"): a pool of `num_workers` threads each
//! preparing *whole batches*, bounded prefetch per worker, deterministic
//! per-epoch shuffling, and in-order batch delivery (batch *i* comes from
//! worker `i % num_workers`, each worker's output is FIFO).

use crate::sample::Dataset;
use crate::sampler::{shard_bounds, Sampler, SequentialSampler, ShardedSampler, ShuffleSampler};
use crate::transforms::Pipeline;
use crate::{DataError, Result};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use ts_metrics::Registry;
use ts_tensor::{collate, Tensor};

/// Configuration mirroring `torch.utils.data.DataLoader` arguments.
#[derive(Debug, Clone)]
pub struct DataLoaderConfig {
    /// Samples per batch.
    pub batch_size: usize,
    /// Worker threads; `0` loads synchronously on the caller's thread.
    pub num_workers: usize,
    /// In-flight batches per worker (PyTorch's `prefetch_factor`).
    pub prefetch_factor: usize,
    /// Drop the final partial batch of an epoch.
    pub drop_last: bool,
    /// Reshuffle each epoch (seeded).
    pub shuffle: bool,
    /// Base RNG seed for shuffling and augmentation.
    pub seed: u64,
}

impl Default for DataLoaderConfig {
    fn default() -> Self {
        Self {
            batch_size: 32,
            num_workers: 0,
            prefetch_factor: 2,
            drop_last: true,
            shuffle: true,
            seed: 0,
        }
    }
}

/// A collated batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Epoch this batch belongs to.
    pub epoch: u64,
    /// Batch index within the epoch.
    pub index: usize,
    /// Collated tensor fields; field 0 has shape `[B, ...]`.
    pub fields: Vec<Tensor>,
    /// Labels, `I64 [B]`.
    pub labels: Tensor,
    /// Dataset indices of the samples, in batch order.
    pub sample_indices: Vec<usize>,
    /// True for the final batch of the epoch.
    pub last_in_epoch: bool,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.sample_indices.len()
    }
}

/// The shared data loader front-end.
pub struct DataLoader {
    dataset: Arc<dyn Dataset>,
    pipeline: Arc<Pipeline>,
    sampler: Arc<dyn Sampler>,
    cfg: DataLoaderConfig,
    /// `(shard, count)` when this loader serves one shard of the epoch.
    shard: Option<(usize, usize)>,
    metrics: Registry,
}

impl std::fmt::Debug for DataLoader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataLoader")
            .field("dataset", &self.dataset.name())
            .field("len", &self.dataset.len())
            .field("shard", &self.shard)
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl DataLoader {
    /// Creates a loader over `dataset` with an identity transform pipeline.
    pub fn new(dataset: Arc<dyn Dataset>, cfg: DataLoaderConfig) -> Self {
        let pipeline = Arc::new(Pipeline::new(cfg.seed));
        Self::with_pipeline(dataset, pipeline, cfg)
    }

    /// Creates a loader with an explicit transform pipeline.
    pub fn with_pipeline(
        dataset: Arc<dyn Dataset>,
        pipeline: Arc<Pipeline>,
        cfg: DataLoaderConfig,
    ) -> Self {
        let sampler: Arc<dyn Sampler> = if cfg.shuffle {
            Arc::new(ShuffleSampler { seed: cfg.seed })
        } else {
            Arc::new(SequentialSampler)
        };
        Self {
            dataset,
            pipeline,
            sampler,
            cfg,
            shard: None,
            metrics: Registry::new(),
        }
    }

    /// Replaces the sampler (used by the Joader baseline's dependent
    /// sampling). Call before [`DataLoader::with_shard`]: sharding wraps
    /// whatever sampler is current.
    pub fn with_sampler(mut self, sampler: Arc<dyn Sampler>) -> Self {
        self.sampler = sampler;
        self
    }

    /// Restricts this loader to shard `shard` of `count`: every epoch it
    /// evaluates the full (seeded) permutation, then loads only its own
    /// contiguous [`shard_bounds`] slice of it. The union of all `count`
    /// sharded loaders covers each epoch exactly once, and `count == 1`
    /// is bit-identical to the unsharded loader.
    ///
    /// # Panics
    /// Panics when `count == 0` or `shard >= count`.
    pub fn with_shard(mut self, shard: usize, count: usize) -> Self {
        assert!(count >= 1, "shard count must be >= 1");
        assert!(shard < count, "shard {shard} out of range for {count}");
        self.sampler = Arc::new(ShardedSampler {
            inner: self.sampler.clone(),
            shard,
            count,
        });
        self.shard = Some((shard, count));
        self
    }

    /// Builds `count` sharded loaders over one dataset, one per producer
    /// shard (shard `i` of `count`), all sharing the configuration.
    pub fn sharded(dataset: Arc<dyn Dataset>, cfg: DataLoaderConfig, count: usize) -> Vec<Self> {
        (0..count)
            .map(|i| Self::new(dataset.clone(), cfg.clone()).with_shard(i, count))
            .collect()
    }

    /// `(shard, count)` when this loader serves one shard of the epoch.
    pub fn shard(&self) -> Option<(usize, usize)> {
        self.shard
    }

    /// The loader's metric registry (`loader.batches`, `loader.samples`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.cfg
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<dyn Dataset> {
        &self.dataset
    }

    /// Pipeline sizing hint `(num_workers, prefetch_factor)` for engines
    /// that hand prepared batches off a stage boundary (the
    /// `TensorProducer` reuses it to size its feeder stage and hand-off
    /// queue): how many worker threads this loader prepares batches on,
    /// and how many batches each keeps in flight.
    pub fn pipeline_hint(&self) -> (usize, usize) {
        (self.cfg.num_workers, self.cfg.prefetch_factor)
    }

    /// Batches per epoch (of this shard's slice, when sharded).
    pub fn batches_per_epoch(&self) -> usize {
        let n = match self.shard {
            Some((shard, count)) => {
                let (start, end) = shard_bounds(self.dataset.len(), shard, count);
                end - start
            }
            None => self.dataset.len(),
        };
        if self.cfg.drop_last {
            n / self.cfg.batch_size
        } else {
            n.div_ceil(self.cfg.batch_size)
        }
    }

    /// Starts iteration over one epoch.
    pub fn epoch(&self, epoch: u64) -> EpochIter {
        let indices = self.sampler.epoch_indices(epoch, self.dataset.len());
        let mut batches: Vec<Vec<usize>> = indices
            .chunks(self.cfg.batch_size)
            .map(|c| c.to_vec())
            .collect();
        if self.cfg.drop_last {
            batches.retain(|b| b.len() == self.cfg.batch_size);
        }
        let num_batches = batches.len();
        if self.cfg.num_workers == 0 || num_batches == 0 {
            return EpochIter {
                mode: IterMode::Sync {
                    worker: BatchBuilder {
                        dataset: self.dataset.clone(),
                        pipeline: self.pipeline.clone(),
                        metrics: self.metrics.clone(),
                        epoch,
                        num_batches,
                    },
                    batches,
                },
                next_index: 0,
                num_batches,
            };
        }
        let workers = self.cfg.num_workers.min(num_batches);
        let mut txs: Vec<Sender<Result<Batch>>> = Vec::with_capacity(workers);
        let mut rxs: Vec<Receiver<Result<Batch>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded(self.cfg.prefetch_factor.max(1));
            txs.push(tx);
            rxs.push(rx);
        }
        let mut handles = Vec::with_capacity(workers);
        for (w, tx) in txs.into_iter().enumerate() {
            let my_batches: Vec<(usize, Vec<usize>)> = batches
                .iter()
                .enumerate()
                .skip(w)
                .step_by(workers)
                .map(|(i, b)| (i, b.clone()))
                .collect();
            let builder = BatchBuilder {
                dataset: self.dataset.clone(),
                pipeline: self.pipeline.clone(),
                metrics: self.metrics.clone(),
                epoch,
                num_batches,
            };
            handles.push(std::thread::spawn(move || {
                for (index, sample_indices) in my_batches {
                    let out = builder.build(index, &sample_indices);
                    if tx.send(out).is_err() {
                        return; // consumer went away; stop early
                    }
                }
            }));
        }
        EpochIter {
            mode: IterMode::Workers { rxs, handles },
            next_index: 0,
            num_batches,
        }
    }
}

/// Builds one collated batch; shared by sync and worker paths.
struct BatchBuilder {
    dataset: Arc<dyn Dataset>,
    pipeline: Arc<Pipeline>,
    metrics: Registry,
    epoch: u64,
    num_batches: usize,
}

impl BatchBuilder {
    fn build(&self, index: usize, sample_indices: &[usize]) -> Result<Batch> {
        let mut decoded = Vec::with_capacity(sample_indices.len());
        for &si in sample_indices {
            let raw = self.dataset.get(si)?;
            let mut dec = self.dataset.decode(&raw)?;
            if !self.pipeline.is_empty() && !dec.fields.is_empty() {
                dec.fields[0] = self.pipeline.apply(&dec.fields[0], self.epoch, si)?;
            }
            decoded.push(dec);
        }
        let num_fields = decoded.first().map(|d| d.fields.len()).unwrap_or(0);
        let mut fields = Vec::with_capacity(num_fields);
        for f in 0..num_fields {
            let per_sample: Vec<Tensor> = decoded.iter().map(|d| d.fields[f].clone()).collect();
            fields.push(collate::stack0(&per_sample)?);
        }
        let labels_vec: Vec<i64> = decoded.iter().map(|d| d.label).collect();
        let labels = Tensor::from_i64(&labels_vec, &[labels_vec.len()], ts_device::DeviceId::Cpu)?;
        self.metrics.counter("loader.batches").inc();
        self.metrics
            .counter("loader.samples")
            .add(sample_indices.len() as u64);
        Ok(Batch {
            epoch: self.epoch,
            index,
            fields,
            labels,
            sample_indices: sample_indices.to_vec(),
            last_in_epoch: index + 1 == self.num_batches,
        })
    }
}

enum IterMode {
    Sync {
        worker: BatchBuilder,
        batches: Vec<Vec<usize>>,
    },
    Workers {
        rxs: Vec<Receiver<Result<Batch>>>,
        handles: Vec<JoinHandle<()>>,
    },
}

/// Iterator over one epoch's batches, in order.
///
/// # Panics
/// Panics if a worker fails to build a batch (mirrors PyTorch, whose worker
/// exceptions propagate and abort the epoch). The synthetic datasets in
/// this repository are infallible once constructed.
pub struct EpochIter {
    mode: IterMode,
    next_index: usize,
    num_batches: usize,
}

impl EpochIter {
    /// Total batches this epoch will yield.
    pub fn num_batches(&self) -> usize {
        self.num_batches
    }
}

impl Iterator for EpochIter {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.next_index >= self.num_batches {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        let result = match &mut self.mode {
            IterMode::Sync { worker, batches } => worker.build(index, &batches[index]),
            IterMode::Workers { rxs, .. } => {
                let w = index % rxs.len();
                rxs[w]
                    .recv()
                    .map_err(|_| DataError::WorkersGone)
                    .flatten_err()
            }
        };
        match result {
            Ok(b) => Some(b),
            Err(e) => panic!("data loader worker failed on batch {index}: {e}"),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.num_batches - self.next_index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for EpochIter {}

impl Drop for EpochIter {
    fn drop(&mut self) {
        if let IterMode::Workers { rxs, handles } = &mut self.mode {
            // Close channels so blocked workers exit, then reap them.
            rxs.clear();
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Helper to flatten `Result<Result<T>>` from the channel.
trait FlattenErr<T> {
    fn flatten_err(self) -> Result<T>;
}

impl<T> FlattenErr<T> for std::result::Result<Result<T>, DataError> {
    fn flatten_err(self) -> Result<T> {
        match self {
            Ok(inner) => inner,
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticImageDataset;

    fn tiny_loader(workers: usize, batch: usize, n: usize) -> DataLoader {
        let ds = Arc::new(SyntheticImageDataset::new(n, 8, 8, 1).with_encoded_len(64));
        DataLoader::new(
            ds,
            DataLoaderConfig {
                batch_size: batch,
                num_workers: workers,
                prefetch_factor: 2,
                drop_last: true,
                shuffle: false,
                seed: 0,
            },
        )
    }

    #[test]
    fn sync_loader_yields_ordered_full_batches() {
        let loader = tiny_loader(0, 4, 10);
        let batches: Vec<Batch> = loader.epoch(0).collect();
        assert_eq!(batches.len(), 2); // drop_last drops the partial 2-sample batch
        assert_eq!(batches[0].index, 0);
        assert_eq!(batches[1].index, 1);
        assert_eq!(batches[0].fields[0].shape(), &[4, 3, 8, 8]);
        assert_eq!(batches[0].labels.shape(), &[4]);
        assert_eq!(batches[0].sample_indices, vec![0, 1, 2, 3]);
        assert!(!batches[0].last_in_epoch);
        assert!(batches[1].last_in_epoch);
    }

    #[test]
    fn worker_loader_matches_sync_loader() {
        let sync_batches: Vec<Batch> = tiny_loader(0, 4, 16).epoch(0).collect();
        let par_batches: Vec<Batch> = tiny_loader(3, 4, 16).epoch(0).collect();
        assert_eq!(sync_batches.len(), par_batches.len());
        for (a, b) in sync_batches.iter().zip(&par_batches) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.sample_indices, b.sample_indices);
            assert!(a.fields[0].data_eq(&b.fields[0]));
            assert!(a.labels.data_eq(&b.labels));
        }
    }

    #[test]
    fn shuffle_changes_order_but_covers_everything() {
        let ds = Arc::new(SyntheticImageDataset::new(32, 8, 8, 1).with_encoded_len(64));
        let loader = DataLoader::new(
            ds,
            DataLoaderConfig {
                batch_size: 8,
                num_workers: 2,
                shuffle: true,
                seed: 5,
                ..Default::default()
            },
        );
        let e0: Vec<usize> = loader.epoch(0).flat_map(|b| b.sample_indices).collect();
        let e1: Vec<usize> = loader.epoch(1).flat_map(|b| b.sample_indices).collect();
        assert_ne!(e0, e1);
        let mut sorted = e0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // same epoch re-iterated is identical (reproducibility)
        let e0_again: Vec<usize> = loader.epoch(0).flat_map(|b| b.sample_indices).collect();
        assert_eq!(e0, e0_again);
    }

    #[test]
    fn keep_last_partial_batch_when_configured() {
        let ds = Arc::new(SyntheticImageDataset::new(10, 8, 8, 1).with_encoded_len(64));
        let loader = DataLoader::new(
            ds,
            DataLoaderConfig {
                batch_size: 4,
                drop_last: false,
                shuffle: false,
                ..Default::default()
            },
        );
        let batches: Vec<Batch> = loader.epoch(0).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].batch_size(), 2);
        assert!(batches[2].last_in_epoch);
    }

    #[test]
    fn early_drop_shuts_workers_down() {
        let loader = tiny_loader(2, 2, 64);
        let mut it = loader.epoch(0);
        let _first = it.next().unwrap();
        drop(it); // must not hang or leak threads
    }

    #[test]
    fn metrics_count_batches_and_samples() {
        let loader = tiny_loader(0, 4, 8);
        let _: Vec<Batch> = loader.epoch(0).collect();
        assert_eq!(loader.metrics().counter("loader.batches").get(), 2);
        assert_eq!(loader.metrics().counter("loader.samples").get(), 8);
    }

    #[test]
    fn batches_per_epoch_matches_iteration() {
        let loader = tiny_loader(0, 3, 11);
        assert_eq!(loader.batches_per_epoch(), 3);
        assert_eq!(loader.epoch(0).count(), 3);
        assert_eq!(loader.epoch(0).len(), 3); // ExactSizeIterator
    }

    #[test]
    fn empty_epoch_yields_nothing() {
        let loader = tiny_loader(2, 8, 4); // 4 samples, batch 8, drop_last
        assert_eq!(loader.epoch(0).count(), 0);
    }

    #[test]
    fn sharded_loaders_partition_each_epoch() {
        let ds = Arc::new(SyntheticImageDataset::new(22, 8, 8, 1).with_encoded_len(64));
        let cfg = DataLoaderConfig {
            batch_size: 4,
            num_workers: 0,
            shuffle: true,
            seed: 13,
            drop_last: false,
            ..Default::default()
        };
        let full = DataLoader::new(ds.clone(), cfg.clone());
        let shards = DataLoader::sharded(ds, cfg, 3);
        for epoch in 0..2 {
            let full_order: Vec<usize> = full.epoch(epoch).flat_map(|b| b.sample_indices).collect();
            let mut union: Vec<usize> = Vec::new();
            let mut per_shard_batches = 0;
            for loader in &shards {
                assert_eq!(loader.batches_per_epoch(), loader.epoch(epoch).count());
                per_shard_batches += loader.batches_per_epoch();
                union.extend(loader.epoch(epoch).flat_map(|b| b.sample_indices));
            }
            // Concatenating the shards' slices reproduces the unsharded
            // permutation exactly: no duplicates, no drops, uneven tail
            // (22 % 3 != 0) included.
            assert_eq!(union, full_order, "epoch {epoch}");
            assert_eq!(per_shard_batches, 2 + 2 + 2);
        }
    }

    #[test]
    fn single_shard_loader_matches_unsharded() {
        let ds = Arc::new(SyntheticImageDataset::new(16, 8, 8, 1).with_encoded_len(64));
        let cfg = DataLoaderConfig {
            batch_size: 4,
            shuffle: true,
            seed: 5,
            ..Default::default()
        };
        let plain = DataLoader::new(ds.clone(), cfg.clone());
        let sharded = DataLoader::new(ds, cfg).with_shard(0, 1);
        assert_eq!(plain.batches_per_epoch(), sharded.batches_per_epoch());
        let a: Vec<Vec<usize>> = plain.epoch(0).map(|b| b.sample_indices).collect();
        let b: Vec<Vec<usize>> = sharded.epoch(0).map(|b| b.sample_indices).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn augmentation_applies_in_workers() {
        let ds = Arc::new(SyntheticImageDataset::new(8, 16, 16, 1).with_encoded_len(64));
        let pipeline =
            Arc::new(Pipeline::new(3).with(crate::transforms::RandomCrop { out_h: 8, out_w: 8 }));
        let loader = DataLoader::with_pipeline(
            ds,
            pipeline,
            DataLoaderConfig {
                batch_size: 4,
                num_workers: 2,
                shuffle: false,
                ..Default::default()
            },
        );
        let b = loader.epoch(0).next().unwrap();
        assert_eq!(b.fields[0].shape(), &[4, 3, 8, 8]);
    }
}
