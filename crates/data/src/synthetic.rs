//! Synthetic datasets matching the shapes and cost profiles of the paper's
//! datasets (Table 1): ImageNet-1K, LibriSpeech, CC3M, Alpaca.

use crate::codec::{decode_bytes, decode_f32, encode_stub};
use crate::sample::{Dataset, DecodedSample, RawSample};
use crate::{DataError, Result};
use ts_device::DeviceId;
use ts_tensor::Tensor;

fn check_index(index: usize, len: usize) -> Result<()> {
    if index >= len {
        return Err(DataError::IndexOutOfRange { index, len });
    }
    Ok(())
}

/// ImageNet-like image classification dataset.
///
/// Samples decode to `U8 [3, H, W]` tensors; encoded size defaults to the
/// ~110 KB average of ImageNet JPEGs.
#[derive(Debug, Clone)]
pub struct SyntheticImageDataset {
    len: usize,
    height: usize,
    width: usize,
    encoded_len: usize,
    classes: i64,
    seed: u64,
    fetch_latency: std::time::Duration,
}

impl SyntheticImageDataset {
    /// A dataset of `len` images decoding to `3×height×width`.
    pub fn new(len: usize, height: usize, width: usize, seed: u64) -> Self {
        Self {
            len,
            height,
            width,
            encoded_len: 110_000,
            classes: 1000,
            seed,
            fetch_latency: std::time::Duration::ZERO,
        }
    }

    /// ImageNet-1K-like configuration decoded at `256×256` (random-cropped
    /// to 224 by the transform pipeline, as TIMM does).
    pub fn imagenet_like(len: usize, seed: u64) -> Self {
        Self::new(len, 256, 256, seed)
    }

    /// Overrides the encoded sample size.
    pub fn with_encoded_len(mut self, encoded_len: usize) -> Self {
        self.encoded_len = encoded_len;
        self
    }

    /// Models per-sample storage fetch latency: `get` blocks this long
    /// before returning the encoded bytes, the way a disk/NFS read would.
    /// Loading then has the real two-part cost profile — I/O wait (hidden
    /// by parallel loader workers) plus decode CPU — which is what
    /// `num_workers` exists to overlap.
    pub fn with_fetch_latency(mut self, fetch_latency: std::time::Duration) -> Self {
        self.fetch_latency = fetch_latency;
        self
    }

    /// Decoded image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Decoded image width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Dataset for SyntheticImageDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        check_index(index, self.len)?;
        if !self.fetch_latency.is_zero() {
            std::thread::sleep(self.fetch_latency);
        }
        Ok(RawSample {
            index,
            bytes: encode_stub(self.seed, index as u64, self.encoded_len),
            label: (splitlabel(self.seed, index) % self.classes.max(1) as u64) as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        self.encoded_len
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        let n = 3 * self.height * self.width;
        let pixels = decode_bytes(&raw.bytes, n);
        let img = Tensor::from_u8(pixels, &[3, self.height, self.width], DeviceId::Cpu)?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![img],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "synthetic-imagenet"
    }
}

/// LibriSpeech-like audio dataset for CLMR-style training.
///
/// Samples decode to `F32 [samples_per_clip]` waveforms. CLMR uses raw
/// windows of 59049 samples; FLAC compresses roughly 2:1, reflected in the
/// default encoded size.
#[derive(Debug, Clone)]
pub struct SyntheticAudioDataset {
    len: usize,
    samples_per_clip: usize,
    encoded_len: usize,
    seed: u64,
}

impl SyntheticAudioDataset {
    /// A dataset of `len` clips of `samples_per_clip` samples.
    pub fn new(len: usize, samples_per_clip: usize, seed: u64) -> Self {
        Self {
            len,
            samples_per_clip,
            encoded_len: samples_per_clip, // ~2:1 over 16-bit PCM
            seed,
        }
    }

    /// LibriSpeech/CLMR-like configuration (59049-sample windows).
    pub fn librispeech_like(len: usize, seed: u64) -> Self {
        Self::new(len, 59_049, seed)
    }

    /// Samples per decoded clip.
    pub fn samples_per_clip(&self) -> usize {
        self.samples_per_clip
    }
}

impl Dataset for SyntheticAudioDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        check_index(index, self.len)?;
        Ok(RawSample {
            index,
            bytes: encode_stub(self.seed ^ 0xA0D10, index as u64, self.encoded_len),
            label: (splitlabel(self.seed, index) % 2451) as i64, // speaker ids
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        self.encoded_len
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        let wave = decode_f32(&raw.bytes, self.samples_per_clip);
        let t = Tensor::from_f32(&wave, &[self.samples_per_clip], DeviceId::Cpu)?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![t],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "synthetic-librispeech"
    }
}

/// CC3M-like image–caption dataset for DALL-E 2 prior training.
///
/// Samples decode to an image `U8 [3, H, W]` plus caption token ids
/// `I64 [tokens]` (fixed CLIP context length of 77).
#[derive(Debug, Clone)]
pub struct SyntheticCaptionDataset {
    len: usize,
    height: usize,
    width: usize,
    tokens: usize,
    encoded_len: usize,
    seed: u64,
}

impl SyntheticCaptionDataset {
    /// A dataset of `len` image–caption pairs.
    pub fn new(len: usize, seed: u64) -> Self {
        Self {
            len,
            height: 224,
            width: 224,
            tokens: 77,
            encoded_len: 90_000,
            seed,
        }
    }

    /// Caption context length.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Dataset for SyntheticCaptionDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        check_index(index, self.len)?;
        Ok(RawSample {
            index,
            bytes: encode_stub(self.seed ^ 0xCC3A, index as u64, self.encoded_len),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        self.encoded_len
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        let n = 3 * self.height * self.width;
        let pixels = decode_bytes(&raw.bytes, n);
        let img = Tensor::from_u8(pixels, &[3, self.height, self.width], DeviceId::Cpu)?;
        // Token ids derived from the tail of the decode stream.
        let tok_bytes = decode_bytes(&raw.bytes[..8.min(raw.bytes.len())], self.tokens);
        let toks: Vec<i64> = tok_bytes.iter().map(|&b| (b as i64) % 49408).collect();
        let caption = Tensor::from_i64(&toks, &[self.tokens], DeviceId::Cpu)?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![img, caption],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "synthetic-cc3m"
    }
}

/// Alpaca-like instruction-tuning dataset.
///
/// Samples decode to `I64 [max_tokens]` padded token sequences, the shape a
/// TorchTune fine-tuning recipe consumes.
#[derive(Debug, Clone)]
pub struct SyntheticTextDataset {
    len: usize,
    max_tokens: usize,
    vocab: i64,
    seed: u64,
}

impl SyntheticTextDataset {
    /// A dataset of `len` sequences padded to `max_tokens`.
    pub fn new(len: usize, max_tokens: usize, seed: u64) -> Self {
        Self {
            len,
            max_tokens,
            vocab: 151_936, // Qwen2.5 vocabulary
            seed,
        }
    }

    /// Alpaca-like configuration (512-token sequences).
    pub fn alpaca_like(len: usize, seed: u64) -> Self {
        Self::new(len, 512, seed)
    }

    /// Padded sequence length.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }
}

impl Dataset for SyntheticTextDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        check_index(index, self.len)?;
        // Text samples are tiny on disk; 4 bytes per (varint-ish) token.
        Ok(RawSample {
            index,
            bytes: encode_stub(self.seed ^ 0xA1BACA, index as u64, self.max_tokens * 2),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        self.max_tokens * 2
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        // Sequence length varies between 25% and 100% of max; rest is pad(0).
        let span = splitlabel(self.seed, raw.index) as usize;
        let real = self.max_tokens / 4 + span % (3 * self.max_tokens / 4).max(1);
        let bytes = decode_bytes(&raw.bytes, real * 2);
        let mut toks = vec![0i64; self.max_tokens];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            toks[i] = ((u16::from_le_bytes([pair[0], pair[1]]) as i64) % (self.vocab - 1)) + 1;
        }
        let t = Tensor::from_i64(&toks, &[self.max_tokens], DeviceId::Cpu)?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![t],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "synthetic-alpaca"
    }
}

fn splitlabel(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_dataset_shapes_and_determinism() {
        let ds = SyntheticImageDataset::new(10, 32, 48, 1).with_encoded_len(256);
        assert_eq!(ds.len(), 10);
        let raw = ds.get(3).unwrap();
        assert_eq!(raw.bytes.len(), 256);
        let dec = ds.decode(&raw).unwrap();
        assert_eq!(dec.fields[0].shape(), &[3, 32, 48]);
        let again = ds.decode(&ds.get(3).unwrap()).unwrap();
        assert!(dec.fields[0].data_eq(&again.fields[0]));
        assert!((0..1000).contains(&dec.label));
    }

    #[test]
    fn image_out_of_range() {
        let ds = SyntheticImageDataset::new(2, 8, 8, 0);
        assert!(matches!(
            ds.get(2).unwrap_err(),
            DataError::IndexOutOfRange { index: 2, len: 2 }
        ));
    }

    #[test]
    fn audio_dataset_waveforms() {
        let ds = SyntheticAudioDataset::new(4, 1024, 9);
        let dec = ds.decode(&ds.get(0).unwrap()).unwrap();
        assert_eq!(dec.fields[0].shape(), &[1024]);
        let v = dec.fields[0].to_vec_f32().unwrap();
        assert!(v.iter().all(|x| (-1.0..=1.0).contains(x)));
    }

    #[test]
    fn caption_dataset_has_two_fields() {
        let mut ds = SyntheticCaptionDataset::new(4, 2);
        ds.height = 16;
        ds.width = 16;
        ds.encoded_len = 128;
        let dec = ds.decode(&ds.get(1).unwrap()).unwrap();
        assert_eq!(dec.fields.len(), 2);
        assert_eq!(dec.fields[0].shape(), &[3, 16, 16]);
        assert_eq!(dec.fields[1].shape(), &[77]);
        let toks = dec.fields[1].to_vec_i64().unwrap();
        assert!(toks.iter().all(|&t| (0..49408).contains(&t)));
    }

    #[test]
    fn text_dataset_padded_tokens() {
        let ds = SyntheticTextDataset::new(6, 64, 3);
        let dec = ds.decode(&ds.get(2).unwrap()).unwrap();
        assert_eq!(dec.fields[0].shape(), &[64]);
        let toks = dec.fields[0].to_vec_i64().unwrap();
        // starts with non-pad tokens, may end padded
        assert!(toks[0] > 0);
        assert!(toks.iter().all(|&t| t >= 0));
        // at least 25% of tokens are real
        assert!(toks.iter().filter(|&&t| t > 0).count() >= 16);
    }

    #[test]
    fn different_indices_have_different_payloads() {
        let ds = SyntheticImageDataset::new(4, 8, 8, 0).with_encoded_len(64);
        assert_ne!(ds.get(0).unwrap().bytes, ds.get(1).unwrap().bytes);
    }
}
