//! Augmentation transforms applied to the primary field of decoded samples.
//!
//! These mirror the TIMM defaults the paper's training scripts use: random
//! crop and horizontal flip on `U8 [3, H, W]` images (normalization happens
//! on-GPU in the reproduction, matching the uint8 host→device transfer
//! volume seen in Table 3). Transforms are seeded per `(epoch, sample)` so
//! runs are reproducible while still varying across epochs.

use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ts_tensor::{DType, Tensor};

/// A deterministic-given-rng transform of one tensor field.
pub trait Transform: Send + Sync {
    /// Applies the transform.
    fn apply(&self, input: &Tensor, rng: &mut StdRng) -> Result<Tensor>;

    /// Short name for diagnostics.
    fn name(&self) -> &str;
}

/// Random spatial crop of a `[C, H, W]` image to `[C, out_h, out_w]`.
#[derive(Debug, Clone)]
pub struct RandomCrop {
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Transform for RandomCrop {
    fn apply(&self, input: &Tensor, rng: &mut StdRng) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 3 {
            return Err(DataError::Decode(format!(
                "RandomCrop expects [C,H,W], got {shape:?}"
            )));
        }
        let (h, w) = (shape[1], shape[2]);
        if self.out_h > h || self.out_w > w {
            return Err(DataError::Decode(format!(
                "crop {}x{} larger than image {h}x{w}",
                self.out_h, self.out_w
            )));
        }
        let top = if h == self.out_h {
            0
        } else {
            rng.gen_range(0..=h - self.out_h)
        };
        let left = if w == self.out_w {
            0
        } else {
            rng.gen_range(0..=w - self.out_w)
        };
        let cropped = input
            .narrow(1, top, self.out_h)?
            .narrow(2, left, self.out_w)?;
        // Materialize: downstream collation assumes dense samples, like
        // torchvision's crop returning a contiguous tensor.
        Ok(cropped.contiguous())
    }

    fn name(&self) -> &str {
        "random_crop"
    }
}

/// Horizontal flip with probability `p` on `[C, H, W]` images.
#[derive(Debug, Clone)]
pub struct RandomHFlip {
    /// Flip probability in `[0, 1]`.
    pub p: f64,
}

impl Transform for RandomHFlip {
    fn apply(&self, input: &Tensor, rng: &mut StdRng) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        if shape.len() != 3 {
            return Err(DataError::Decode(format!(
                "RandomHFlip expects [C,H,W], got {shape:?}"
            )));
        }
        if !rng.gen_bool(self.p.clamp(0.0, 1.0)) {
            return Ok(input.clone());
        }
        if input.dtype() != DType::U8 {
            return Err(DataError::Decode("RandomHFlip expects U8 images".into()));
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let src = input.gather_bytes();
        let mut dst = vec![0u8; src.len()];
        for ci in 0..c {
            for hi in 0..h {
                let row = (ci * h + hi) * w;
                for wi in 0..w {
                    dst[row + wi] = src[row + (w - 1 - wi)];
                }
            }
        }
        Ok(Tensor::from_u8(dst, &shape, input.device())?)
    }

    fn name(&self) -> &str {
        "random_hflip"
    }
}

/// Nearest-neighbour resize of a `[C, H, W]` image to `[C, out_h, out_w]`.
///
/// TIMM pipelines resize before cropping; nearest-neighbour keeps the
/// kernel dependency-free while costing realistic CPU per output pixel.
#[derive(Debug, Clone)]
pub struct Resize {
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Transform for Resize {
    fn apply(&self, input: &Tensor, _rng: &mut StdRng) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        if shape.len() != 3 {
            return Err(DataError::Decode(format!(
                "Resize expects [C,H,W], got {shape:?}"
            )));
        }
        if input.dtype() != DType::U8 {
            return Err(DataError::Decode("Resize expects U8 images".into()));
        }
        if self.out_h == 0 || self.out_w == 0 {
            return Err(DataError::Decode("Resize to zero size".into()));
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let src = input.gather_bytes();
        let mut dst = vec![0u8; c * self.out_h * self.out_w];
        for ci in 0..c {
            for oy in 0..self.out_h {
                let sy = oy * h / self.out_h;
                for ox in 0..self.out_w {
                    let sx = ox * w / self.out_w;
                    dst[(ci * self.out_h + oy) * self.out_w + ox] = src[(ci * h + sy) * w + sx];
                }
            }
        }
        Ok(Tensor::from_u8(
            dst,
            &[c, self.out_h, self.out_w],
            input.device(),
        )?)
    }

    fn name(&self) -> &str {
        "resize"
    }
}

/// Converts `U8` to `F32` applying `(x/255 - mean) / std` per channel.
///
/// Kept for CPU-side normalization pipelines; the default reproduction
/// pipelines normalize on the GPU instead (cheaper PCIe, as in the paper).
#[derive(Debug, Clone)]
pub struct Normalize {
    /// Per-channel mean in `[0,1]` space.
    pub mean: Vec<f32>,
    /// Per-channel std in `[0,1]` space.
    pub std: Vec<f32>,
}

impl Transform for Normalize {
    fn apply(&self, input: &Tensor, _rng: &mut StdRng) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        if shape.len() != 3 || shape[0] != self.mean.len() || shape[0] != self.std.len() {
            return Err(DataError::Decode(format!(
                "Normalize with {} channels got shape {shape:?}",
                self.mean.len()
            )));
        }
        let bytes = input.to_vec_u8()?;
        let hw = shape[1] * shape[2];
        let mut out = Vec::with_capacity(bytes.len());
        for (i, b) in bytes.iter().enumerate() {
            let c = i / hw;
            out.push(((*b as f32 / 255.0) - self.mean[c]) / self.std[c]);
        }
        Ok(Tensor::from_f32(&out, &shape, input.device())?)
    }

    fn name(&self) -> &str {
        "normalize"
    }
}

/// An ordered list of transforms with per-sample seeding.
#[derive(Default)]
pub struct Pipeline {
    transforms: Vec<Box<dyn Transform>>,
    seed: u64,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.transforms.iter().map(|t| t.name()).collect();
        f.debug_struct("Pipeline")
            .field("transforms", &names)
            .field("seed", &self.seed)
            .finish()
    }
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new(seed: u64) -> Self {
        Self {
            transforms: Vec::new(),
            seed,
        }
    }

    /// Appends a transform.
    pub fn with(mut self, t: impl Transform + 'static) -> Self {
        self.transforms.push(Box::new(t));
        self
    }

    /// The TIMM-like ImageNet training pipeline: random 224-crop + flip.
    pub fn imagenet_train(seed: u64) -> Self {
        Self::new(seed)
            .with(RandomCrop {
                out_h: 224,
                out_w: 224,
            })
            .with(RandomHFlip { p: 0.5 })
    }

    /// Number of transforms.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// True when the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Applies all transforms to `input`, seeding the RNG from
    /// `(pipeline seed, epoch, sample index)`.
    pub fn apply(&self, input: &Tensor, epoch: u64, sample_index: usize) -> Result<Tensor> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ epoch.wrapping_mul(0x9E3779B97F4A7C15) ^ (sample_index as u64) << 1,
        );
        let mut t = input.clone();
        for tr in &self.transforms {
            t = tr.apply(&t, &mut rng)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    fn image(h: usize, w: usize) -> Tensor {
        Tensor::rand_u8(&[3, h, w], DeviceId::Cpu, 42)
    }

    #[test]
    fn crop_shape_and_determinism() {
        let img = image(16, 16);
        let p = Pipeline::new(7).with(RandomCrop { out_h: 8, out_w: 8 });
        let a = p.apply(&img, 0, 5).unwrap();
        let b = p.apply(&img, 0, 5).unwrap();
        assert_eq!(a.shape(), &[3, 8, 8]);
        assert!(a.data_eq(&b));
        // different epoch -> (almost surely) different crop
        let c = p.apply(&img, 1, 5).unwrap();
        assert_eq!(c.shape(), &[3, 8, 8]);
    }

    #[test]
    fn crop_rejects_oversize() {
        let img = image(8, 8);
        let crop = RandomCrop { out_h: 9, out_w: 8 };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(crop.apply(&img, &mut rng).is_err());
    }

    #[test]
    fn flip_reverses_rows() {
        let img = Tensor::from_u8(vec![1, 2, 3, 4, 5, 6], &[1, 2, 3], DeviceId::Cpu).unwrap();
        let flip = RandomHFlip { p: 1.0 };
        let mut rng = StdRng::seed_from_u64(0);
        let out = flip.apply(&img, &mut rng).unwrap();
        assert_eq!(out.to_vec_u8().unwrap(), vec![3, 2, 1, 6, 5, 4]);
        // double flip is identity
        let back = flip.apply(&out, &mut rng).unwrap();
        assert!(back.data_eq(&img));
    }

    #[test]
    fn flip_probability_zero_is_identity() {
        let img = image(4, 4);
        let flip = RandomHFlip { p: 0.0 };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(flip.apply(&img, &mut rng).unwrap().data_eq(&img));
    }

    #[test]
    fn normalize_values() {
        let img = Tensor::from_u8(vec![0, 255, 128, 64], &[1, 2, 2], DeviceId::Cpu).unwrap();
        let n = Normalize {
            mean: vec![0.5],
            std: vec![0.5],
        };
        let mut rng = StdRng::seed_from_u64(0);
        let out = n.apply(&img, &mut rng).unwrap();
        let v = out.to_vec_f32().unwrap();
        assert!((v[0] - (-1.0)).abs() < 1e-6);
        assert!((v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_channel_mismatch() {
        let img = image(4, 4);
        let n = Normalize {
            mean: vec![0.5],
            std: vec![0.5],
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(n.apply(&img, &mut rng).is_err());
    }

    #[test]
    fn imagenet_train_pipeline_end_to_end() {
        let img = Tensor::rand_u8(&[3, 256, 256], DeviceId::Cpu, 0);
        let p = Pipeline::imagenet_train(123);
        let out = p.apply(&img, 0, 0).unwrap();
        assert_eq!(out.shape(), &[3, 224, 224]);
        assert_eq!(p.len(), 2);
    }
}

#[cfg(test)]
mod resize_tests {
    use super::*;
    use ts_device::DeviceId;

    #[test]
    fn resize_shapes_and_identity() {
        let img = Tensor::rand_u8(&[3, 16, 12], DeviceId::Cpu, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let down = Resize { out_h: 8, out_w: 6 }.apply(&img, &mut rng).unwrap();
        assert_eq!(down.shape(), &[3, 8, 6]);
        // identity resize keeps every pixel
        let same = Resize {
            out_h: 16,
            out_w: 12,
        }
        .apply(&img, &mut rng)
        .unwrap();
        assert!(same.data_eq(&img));
    }

    #[test]
    fn resize_upsamples_by_repetition() {
        let img = Tensor::from_u8(vec![1, 2, 3, 4], &[1, 2, 2], DeviceId::Cpu).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let up = Resize { out_h: 4, out_w: 4 }.apply(&img, &mut rng).unwrap();
        assert_eq!(
            up.to_vec_u8().unwrap(),
            vec![1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4]
        );
    }

    #[test]
    fn resize_validates_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let flat = Tensor::rand_u8(&[16], DeviceId::Cpu, 1);
        assert!(Resize { out_h: 4, out_w: 4 }
            .apply(&flat, &mut rng)
            .is_err());
        let img = Tensor::rand_u8(&[3, 4, 4], DeviceId::Cpu, 1);
        assert!(Resize { out_h: 0, out_w: 4 }.apply(&img, &mut rng).is_err());
        let f32img = Tensor::rand_f32(&[3, 4, 4], DeviceId::Cpu, 1);
        assert!(Resize { out_h: 2, out_w: 2 }
            .apply(&f32img, &mut rng)
            .is_err());
    }

    #[test]
    fn resize_then_crop_pipeline() {
        let p = Pipeline::new(3)
            .with(Resize {
                out_h: 32,
                out_w: 32,
            })
            .with(RandomCrop {
                out_h: 24,
                out_w: 24,
            });
        let img = Tensor::rand_u8(&[3, 80, 60], DeviceId::Cpu, 2);
        let out = p.apply(&img, 0, 0).unwrap();
        assert_eq!(out.shape(), &[3, 24, 24]);
    }
}
