//! Epoch samplers: the order in which samples are visited.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces the visit order for each epoch.
pub trait Sampler: Send + Sync {
    /// The indices for `epoch`, covering `len` samples exactly once.
    fn epoch_indices(&self, epoch: u64, len: usize) -> Vec<usize>;
}

/// Visits samples in dataset order every epoch.
#[derive(Debug, Clone, Default)]
pub struct SequentialSampler;

impl Sampler for SequentialSampler {
    fn epoch_indices(&self, _epoch: u64, len: usize) -> Vec<usize> {
        (0..len).collect()
    }
}

/// Reshuffles every epoch with a seed, like PyTorch's seeded `RandomSampler`:
/// the permutation depends on `(seed, epoch)` only.
#[derive(Debug, Clone)]
pub struct ShuffleSampler {
    /// Base seed.
    pub seed: u64,
}

impl Sampler for ShuffleSampler {
    fn epoch_indices(&self, epoch: u64, len: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..len).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ epoch.wrapping_mul(0x9E3779B97F4A7C15));
        idx.shuffle(&mut rng);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_identity() {
        assert_eq!(SequentialSampler.epoch_indices(3, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let s = ShuffleSampler { seed: 1 };
        let idx = s.epoch_indices(0, 100);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_depends_on_epoch_and_seed_only() {
        let s = ShuffleSampler { seed: 9 };
        assert_eq!(s.epoch_indices(2, 50), s.epoch_indices(2, 50));
        assert_ne!(s.epoch_indices(2, 50), s.epoch_indices(3, 50));
        let s2 = ShuffleSampler { seed: 10 };
        assert_ne!(s.epoch_indices(2, 50), s2.epoch_indices(2, 50));
    }

    #[test]
    fn empty_dataset_is_fine() {
        assert!(ShuffleSampler { seed: 0 }.epoch_indices(0, 0).is_empty());
    }
}
