//! Epoch samplers: the order in which samples are visited.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Produces the visit order for each epoch.
pub trait Sampler: Send + Sync {
    /// The indices for `epoch`, covering `len` samples exactly once.
    fn epoch_indices(&self, epoch: u64, len: usize) -> Vec<usize>;
}

/// Visits samples in dataset order every epoch.
#[derive(Debug, Clone, Default)]
pub struct SequentialSampler;

impl Sampler for SequentialSampler {
    fn epoch_indices(&self, _epoch: u64, len: usize) -> Vec<usize> {
        (0..len).collect()
    }
}

/// Reshuffles every epoch with a seed, like PyTorch's seeded `RandomSampler`:
/// the permutation depends on `(seed, epoch)` only.
#[derive(Debug, Clone)]
pub struct ShuffleSampler {
    /// Base seed.
    pub seed: u64,
}

impl Sampler for ShuffleSampler {
    fn epoch_indices(&self, epoch: u64, len: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..len).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ epoch.wrapping_mul(0x9E3779B97F4A7C15));
        idx.shuffle(&mut rng);
        idx
    }
}

/// The contiguous, balanced slice of an epoch permutation owned by shard
/// `shard` of `count`: `(start, end)` positions into the permuted index
/// list. Sizes differ by at most one sample (the first `len % count`
/// shards get the extra one), so the union of all shards' slices is the
/// whole permutation — no duplicates, no drops — even when
/// `len % count != 0`.
pub fn shard_bounds(len: usize, shard: usize, count: usize) -> (usize, usize) {
    assert!(count >= 1, "shard count must be >= 1");
    assert!(shard < count, "shard {shard} out of range for {count}");
    let base = len / count;
    let rem = len % count;
    let start = shard * base + shard.min(rem);
    let end = start + base + usize::from(shard < rem);
    (start, end)
}

/// A shard-aware split of any inner sampler (the multi-producer sharding
/// seam): every shard evaluates the *same* inner permutation for the
/// epoch, then takes its own contiguous [`shard_bounds`] slice of it. With
/// `count == 1` the slice is the whole permutation, so a single shard is
/// bit-identical to the unsharded sampler.
#[derive(Clone)]
pub struct ShardedSampler {
    /// The sampler whose permutation is partitioned.
    pub inner: Arc<dyn Sampler>,
    /// This shard's index, `0..count`.
    pub shard: usize,
    /// Total shards partitioning the epoch.
    pub count: usize,
}

impl std::fmt::Debug for ShardedSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSampler")
            .field("shard", &self.shard)
            .field("count", &self.count)
            .finish()
    }
}

impl Sampler for ShardedSampler {
    fn epoch_indices(&self, epoch: u64, len: usize) -> Vec<usize> {
        let full = self.inner.epoch_indices(epoch, len);
        let (start, end) = shard_bounds(full.len(), self.shard, self.count);
        full[start..end].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_identity() {
        assert_eq!(SequentialSampler.epoch_indices(3, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let s = ShuffleSampler { seed: 1 };
        let idx = s.epoch_indices(0, 100);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_depends_on_epoch_and_seed_only() {
        let s = ShuffleSampler { seed: 9 };
        assert_eq!(s.epoch_indices(2, 50), s.epoch_indices(2, 50));
        assert_ne!(s.epoch_indices(2, 50), s.epoch_indices(3, 50));
        let s2 = ShuffleSampler { seed: 10 };
        assert_ne!(s.epoch_indices(2, 50), s2.epoch_indices(2, 50));
    }

    #[test]
    fn empty_dataset_is_fine() {
        assert!(ShuffleSampler { seed: 0 }.epoch_indices(0, 0).is_empty());
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for len in [0usize, 1, 7, 10, 11, 64] {
            for count in [1usize, 2, 3, 5] {
                let mut covered = 0;
                let mut prev_end = 0;
                for shard in 0..count {
                    let (start, end) = shard_bounds(len, shard, count);
                    assert_eq!(start, prev_end, "gap at shard {shard} of {count}");
                    assert!(end >= start);
                    assert!(end - start <= len / count + 1, "unbalanced shard");
                    covered += end - start;
                    prev_end = end;
                }
                assert_eq!(covered, len, "len {len} count {count}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let inner = Arc::new(ShuffleSampler { seed: 3 });
        let sharded = ShardedSampler {
            inner: inner.clone(),
            shard: 0,
            count: 1,
        };
        assert_eq!(sharded.epoch_indices(4, 33), inner.epoch_indices(4, 33));
    }

    #[test]
    fn shards_partition_the_permutation() {
        let inner: Arc<dyn Sampler> = Arc::new(ShuffleSampler { seed: 9 });
        for count in [2usize, 3, 5] {
            let mut union: Vec<usize> = Vec::new();
            for shard in 0..count {
                let s = ShardedSampler {
                    inner: inner.clone(),
                    shard,
                    count,
                };
                union.extend(s.epoch_indices(1, 31)); // 31 % count != 0 for all
            }
            assert_eq!(union, inner.epoch_indices(1, 31), "count {count}");
        }
    }
}
