//! Dataset and sample abstractions.

use crate::Result;
use bytes::Bytes;
use ts_tensor::Tensor;

/// An undecoded sample as it comes off storage: encoded bytes plus label.
#[derive(Debug, Clone)]
pub struct RawSample {
    /// Position in the dataset.
    pub index: usize,
    /// Encoded payload (what would sit in the file on disk).
    pub bytes: Bytes,
    /// Supervised label (class id / token count / caption id).
    pub label: i64,
}

/// A decoded sample: one or more tensor fields plus the label.
///
/// Field conventions per modality:
/// * image: `fields[0]` = `U8 [3, H, W]`
/// * audio: `fields[0]` = `F32 [samples]`
/// * caption pair: `fields[0]` = image, `fields[1]` = `I64 [tokens]`
/// * text: `fields[0]` = `I64 [tokens]` (fixed length, padded)
#[derive(Debug, Clone)]
pub struct DecodedSample {
    /// Position in the dataset.
    pub index: usize,
    /// Tensor fields.
    pub fields: Vec<Tensor>,
    /// Supervised label.
    pub label: i64,
}

/// A map-style dataset: random access to raw samples.
///
/// Implementations must be cheap to `get` relative to decoding; the decode
/// cost belongs to the pipeline so that `num_workers` scales it, as in
/// PyTorch.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches the raw (encoded) sample at `index`.
    fn get(&self, index: usize) -> Result<RawSample>;

    /// Bytes a single encoded sample occupies on storage (used by the
    /// simulator's disk model and by I/O accounting).
    fn encoded_sample_bytes(&self) -> usize;

    /// Decodes a raw sample into tensor fields. This is where the real CPU
    /// work happens.
    fn decode(&self, raw: &RawSample) -> Result<DecodedSample>;

    /// Short human-readable name.
    fn name(&self) -> &str {
        "dataset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    struct TinyDataset;

    impl Dataset for TinyDataset {
        fn len(&self) -> usize {
            3
        }
        fn get(&self, index: usize) -> Result<RawSample> {
            if index >= 3 {
                return Err(crate::DataError::IndexOutOfRange { index, len: 3 });
            }
            Ok(RawSample {
                index,
                bytes: Bytes::from(vec![index as u8; 4]),
                label: index as i64,
            })
        }
        fn encoded_sample_bytes(&self) -> usize {
            4
        }
        fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
            let t = Tensor::from_u8(raw.bytes.to_vec(), &[4], DeviceId::Cpu)?;
            Ok(DecodedSample {
                index: raw.index,
                fields: vec![t],
                label: raw.label,
            })
        }
    }

    #[test]
    fn trait_object_usable() {
        let ds: Box<dyn Dataset> = Box::new(TinyDataset);
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        let raw = ds.get(1).unwrap();
        let dec = ds.decode(&raw).unwrap();
        assert_eq!(dec.fields[0].to_vec_u8().unwrap(), vec![1, 1, 1, 1]);
        assert!(ds.get(5).is_err());
    }
}
