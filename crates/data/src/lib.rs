#![warn(missing_docs)]

//! Data-loading substrate: datasets, decode pipelines, samplers, and a
//! multi-worker prefetching [`DataLoader`].
//!
//! This reproduces the loader half of Figure 2a in the paper: fetch →
//! decode → transform/augment → collate, executed by a pool of worker
//! threads with bounded prefetch, exactly the PyTorch `DataLoader`
//! behaviours TensorSocket wraps:
//!
//! * workers prepare *whole batches* and deliver them in order,
//! * `num_workers` scales throughput without changing per-batch latency,
//! * `prefetch_factor` bounds in-flight batches per worker,
//! * shuffling is per-epoch, seeded, and identical across re-runs.
//!
//! The datasets are synthetic stand-ins for ImageNet-1K, LibriSpeech, CC3M
//! and Alpaca (see `DESIGN.md` §2): procedurally generated encoded samples
//! whose decode step performs *real* CPU work proportional to the decoded
//! size, so loader-side costs behave like the real pipelines.

pub mod codec;
pub mod combinators;
pub mod loader;
pub mod sample;
pub mod sampler;
pub mod synthetic;
pub mod transforms;

pub use combinators::{ConcatDataset, SubsetDataset};
pub use loader::{Batch, DataLoader, DataLoaderConfig, EpochIter};
pub use sample::{Dataset, DecodedSample, RawSample};
pub use sampler::{shard_bounds, Sampler, SequentialSampler, ShardedSampler, ShuffleSampler};
pub use synthetic::{
    SyntheticAudioDataset, SyntheticCaptionDataset, SyntheticImageDataset, SyntheticTextDataset,
};
pub use transforms::{Normalize, Pipeline, RandomCrop, RandomHFlip, Resize, Transform};

/// Errors from the data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Index outside the dataset.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The dataset length.
        len: usize,
    },
    /// Decode failed (corrupt synthetic payload or wrong decoder).
    Decode(String),
    /// Tensor-level failure bubbled up.
    Tensor(ts_tensor::TensorError),
    /// The loader's worker pool shut down mid-epoch.
    WorkersGone,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for dataset of {len}")
            }
            DataError::Decode(m) => write!(f, "decode error: {m}"),
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::WorkersGone => write!(f, "data loader workers terminated"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<ts_tensor::TensorError> for DataError {
    fn from(e: ts_tensor::TensorError) -> Self {
        DataError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DataError>;
