//! The toy codec: deterministic encoded payloads whose *decode* performs
//! real CPU work proportional to the decoded size.
//!
//! JPEG decoding dominates image pre-processing cost in the paper's
//! pipelines ("costly work, such as image decoding", §5). We cannot ship
//! ImageNet, but the property that matters to every experiment is: decode
//! burns CPU ∝ output pixels and is identical for the same input. The
//! xorshift-based expander below has exactly that profile, and decode
//! output depends on every encoded byte, so correctness tests can detect
//! corruption or misordering.

use bytes::Bytes;

/// Deterministically generates `len` encoded bytes for `(seed, index)`.
///
/// This stands in for reading the JPEG/FLAC/… file from disk; it is cheap
/// relative to [`decode_bytes`], mirroring fetch-vs-decode cost on real
/// pipelines.
pub fn encode_stub(seed: u64, index: u64, len: usize) -> Bytes {
    let mut state = splitmix(seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
    let mut out = Vec::with_capacity(len);
    // Generate 8 bytes per PRNG step.
    while out.len() < len {
        state = xorshift64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

/// Expands encoded bytes into `out_len` decoded bytes.
///
/// Work is Θ(`out_len`) with a small constant (one xorshift round and one
/// multiply per output byte, plus one absorption round per input byte),
/// deterministic, and dependent on every input byte.
pub fn decode_bytes(encoded: &[u8], out_len: usize) -> Vec<u8> {
    // Absorb the input.
    let mut state: u64 = 0x6C62272E07BB0142;
    for &b in encoded {
        state ^= b as u64;
        state = state.wrapping_mul(0x100000001B3);
    }
    if state == 0 {
        state = 1;
    }
    // Squeeze the output.
    let mut out = vec![0u8; out_len];
    for slot in out.iter_mut() {
        state = xorshift64(state);
        *slot = (state >> 24) as u8;
    }
    out
}

/// Like [`decode_bytes`] but producing `f32` values in `[-1, 1]`, used for
/// audio waveforms.
pub fn decode_f32(encoded: &[u8], out_len: usize) -> Vec<f32> {
    let bytes = decode_bytes(encoded, out_len);
    bytes
        .into_iter()
        .map(|b| (b as f32 / 127.5) - 1.0)
        .collect()
}

#[inline]
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_deterministic_and_distinct() {
        assert_eq!(encode_stub(1, 0, 64), encode_stub(1, 0, 64));
        assert_ne!(encode_stub(1, 0, 64), encode_stub(1, 1, 64));
        assert_ne!(encode_stub(2, 0, 64), encode_stub(1, 0, 64));
        assert_eq!(encode_stub(1, 0, 37).len(), 37);
    }

    #[test]
    fn decode_depends_on_every_input_byte() {
        let enc = encode_stub(3, 7, 128).to_vec();
        let base = decode_bytes(&enc, 256);
        for flip in [0usize, 64, 127] {
            let mut tweaked = enc.clone();
            tweaked[flip] ^= 0x80;
            assert_ne!(decode_bytes(&tweaked, 256), base, "byte {flip} ignored");
        }
    }

    #[test]
    fn decode_len_exact() {
        let enc = encode_stub(0, 0, 16);
        assert_eq!(decode_bytes(&enc, 1000).len(), 1000);
        assert_eq!(decode_bytes(&enc, 0).len(), 0);
    }

    #[test]
    fn decode_f32_range() {
        let enc = encode_stub(5, 5, 32);
        let v = decode_f32(&enc, 512);
        assert_eq!(v.len(), 512);
        assert!(v.iter().all(|x| (-1.0..=1.0).contains(x)));
        // not all identical
        assert!(v.iter().any(|x| (*x - v[0]).abs() > 1e-6));
    }

    #[test]
    fn empty_input_still_decodes() {
        assert_eq!(decode_bytes(&[], 8).len(), 8);
    }
}
