//! Dataset combinators: concatenation and subsetting, mirroring
//! `torch.utils.data.ConcatDataset` / `Subset`.
//!
//! These matter to the sharing story: Joader's selling point is sharing
//! across *overlapping* datasets, which users typically build with exactly
//! these combinators (a subset for a cheap trial, a concat for an extended
//! corpus). With TensorSocket, consumers of a subset simply attach to the
//! producer of the superset's loader.

use crate::sample::{Dataset, DecodedSample, RawSample};
use crate::{DataError, Result};
use std::sync::Arc;

/// Chains several datasets end to end.
pub struct ConcatDataset {
    parts: Vec<Arc<dyn Dataset>>,
    /// Exclusive prefix sums of part lengths.
    offsets: Vec<usize>,
    len: usize,
}

impl ConcatDataset {
    /// Concatenates `parts` in order.
    ///
    /// # Panics
    /// Panics when `parts` is empty.
    pub fn new(parts: Vec<Arc<dyn Dataset>>) -> Self {
        assert!(!parts.is_empty(), "ConcatDataset of zero parts");
        let mut offsets = Vec::with_capacity(parts.len());
        let mut acc = 0usize;
        for p in &parts {
            offsets.push(acc);
            acc += p.len();
        }
        Self {
            parts,
            offsets,
            len: acc,
        }
    }

    fn locate(&self, index: usize) -> Result<(usize, usize)> {
        if index >= self.len {
            return Err(DataError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        let part = self
            .offsets
            .partition_point(|&off| off <= index)
            .saturating_sub(1);
        Ok((part, index - self.offsets[part]))
    }
}

impl Dataset for ConcatDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        let (part, local) = self.locate(index)?;
        let mut raw = self.parts[part].get(local)?;
        raw.index = index;
        Ok(raw)
    }

    fn encoded_sample_bytes(&self) -> usize {
        // conservative: the largest of the parts
        self.parts
            .iter()
            .map(|p| p.encoded_sample_bytes())
            .max()
            .unwrap_or(0)
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        let (part, local) = self.locate(raw.index)?;
        let local_raw = RawSample {
            index: local,
            bytes: raw.bytes.clone(),
            label: raw.label,
        };
        let mut dec = self.parts[part].decode(&local_raw)?;
        dec.index = raw.index;
        Ok(dec)
    }

    fn name(&self) -> &str {
        "concat"
    }
}

/// A view of selected indices of another dataset.
pub struct SubsetDataset {
    base: Arc<dyn Dataset>,
    indices: Vec<usize>,
}

impl SubsetDataset {
    /// Selects `indices` (in the given order) from `base`.
    ///
    /// # Errors
    /// Fails when any index is out of range for `base`.
    pub fn new(base: Arc<dyn Dataset>, indices: Vec<usize>) -> Result<Self> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= base.len()) {
            return Err(DataError::IndexOutOfRange {
                index: bad,
                len: base.len(),
            });
        }
        Ok(Self { base, indices })
    }

    /// The first `n` samples of `base`.
    pub fn head(base: Arc<dyn Dataset>, n: usize) -> Result<Self> {
        let n = n.min(base.len());
        Self::new(base, (0..n).collect())
    }
}

impl Dataset for SubsetDataset {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn get(&self, index: usize) -> Result<RawSample> {
        let &base_index = self.indices.get(index).ok_or(DataError::IndexOutOfRange {
            index,
            len: self.indices.len(),
        })?;
        let mut raw = self.base.get(base_index)?;
        raw.index = index;
        Ok(raw)
    }

    fn encoded_sample_bytes(&self) -> usize {
        self.base.encoded_sample_bytes()
    }

    fn decode(&self, raw: &RawSample) -> Result<DecodedSample> {
        let &base_index = self
            .indices
            .get(raw.index)
            .ok_or(DataError::IndexOutOfRange {
                index: raw.index,
                len: self.indices.len(),
            })?;
        let base_raw = RawSample {
            index: base_index,
            bytes: raw.bytes.clone(),
            label: raw.label,
        };
        let mut dec = self.base.decode(&base_raw)?;
        dec.index = raw.index;
        Ok(dec)
    }

    fn name(&self) -> &str {
        "subset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticImageDataset;

    fn img(n: usize, seed: u64) -> Arc<dyn Dataset> {
        Arc::new(SyntheticImageDataset::new(n, 8, 8, seed).with_encoded_len(64))
    }

    #[test]
    fn concat_reindexes_across_parts() {
        let ds = ConcatDataset::new(vec![img(3, 1), img(2, 2)]);
        assert_eq!(ds.len(), 5);
        // index 3 maps to part 1, local 0
        let raw3 = ds.get(3).unwrap();
        assert_eq!(raw3.index, 3);
        let direct = img(2, 2).get(0).unwrap();
        assert_eq!(raw3.bytes, direct.bytes);
        assert!(ds.get(5).is_err());
    }

    #[test]
    fn concat_decode_round_trips() {
        let ds = ConcatDataset::new(vec![img(3, 1), img(2, 2)]);
        for i in 0..ds.len() {
            let raw = ds.get(i).unwrap();
            let dec = ds.decode(&raw).unwrap();
            assert_eq!(dec.index, i);
            assert_eq!(dec.fields[0].shape(), &[3, 8, 8]);
        }
    }

    #[test]
    fn subset_selects_and_reorders() {
        let base = img(10, 3);
        let sub = SubsetDataset::new(base.clone(), vec![7, 2, 5]).unwrap();
        assert_eq!(sub.len(), 3);
        let raw = sub.get(0).unwrap();
        assert_eq!(raw.bytes, base.get(7).unwrap().bytes);
        assert_eq!(raw.index, 0);
        assert!(sub.get(3).is_err());
    }

    #[test]
    fn subset_rejects_bad_indices() {
        assert!(SubsetDataset::new(img(4, 0), vec![0, 4]).is_err());
    }

    #[test]
    fn head_clamps() {
        let sub = SubsetDataset::head(img(4, 0), 100).unwrap();
        assert_eq!(sub.len(), 4);
    }

    #[test]
    fn combinators_work_with_the_loader() {
        use crate::loader::{DataLoader, DataLoaderConfig};
        let ds = Arc::new(ConcatDataset::new(vec![img(6, 1), img(6, 2)]));
        let sub = Arc::new(SubsetDataset::head(ds, 8).unwrap());
        let loader = DataLoader::new(
            sub,
            DataLoaderConfig {
                batch_size: 4,
                num_workers: 2,
                shuffle: false,
                ..Default::default()
            },
        );
        let batches: Vec<_> = loader.epoch(0).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].fields[0].shape(), &[4, 3, 8, 8]);
    }
}
