//! The CI benchmark-regression gate.
//!
//! ```text
//! bench-gate <baseline.json> <current.json> [--threshold 0.25]
//! ```
//!
//! Compares a freshly generated suite report against the committed
//! baseline (both in the `BENCH_*.json` schema of `ts_bench::report`) and
//! exits non-zero when any benchmark's mean regressed by more than the
//! threshold (default 25%), or when a baseline benchmark disappeared from
//! the current run. Improvements and new benchmarks pass; a low iteration
//! floor is called out so noisy means are visible in the log.

use std::process::ExitCode;
use ts_bench::report::{compare, BenchReport, Delta};

/// Iteration floors below this are flagged as noisy in the output.
const NOISY_ITER_FLOOR: u64 = 20;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--threshold needs a fractional value (e.g. 0.25)");
                return ExitCode::from(2);
            };
            threshold = v;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench-gate <baseline.json> <current.json> [--threshold 0.25]");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    if baseline.suite != current.suite {
        eprintln!(
            "bench-gate: suite mismatch: baseline \"{}\" vs current \"{}\"",
            baseline.suite, current.suite
        );
        return ExitCode::from(2);
    }
    println!(
        "suite {:<20} baseline schema v{} ({} B payload), current schema v{} ({} B payload)",
        current.suite,
        baseline.schema_version,
        baseline.payload_bytes,
        current.schema_version,
        current.payload_bytes
    );
    if current.iter_floor < NOISY_ITER_FLOOR {
        println!(
            "note: current iteration floor is {} (<{NOISY_ITER_FLOOR}); means may be noisy",
            current.iter_floor
        );
    }
    let deltas = compare(&baseline, &current);
    let mut failures = 0usize;
    for delta in &deltas {
        match delta {
            Delta::Compared {
                bench,
                baseline_ns,
                current_ns,
                ratio,
            } => {
                let regressed = delta.regressed(threshold);
                let verdict = if regressed { "REGRESSED" } else { "ok" };
                println!(
                    "{verdict:<10} {bench:<48} {baseline_ns:>14.1} ns -> {current_ns:>14.1} ns  ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
                if regressed {
                    failures += 1;
                }
            }
            Delta::Missing { bench } => {
                println!("MISSING    {bench:<48} (in baseline, absent from current run)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "bench-gate: {failures} benchmark(s) regressed more than {:.0}% (or went missing) \
             against {baseline_path}",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench-gate: {} benchmark(s) within the {:.0}% budget",
        deltas.len(),
        threshold * 100.0
    );
    ExitCode::SUCCESS
}
