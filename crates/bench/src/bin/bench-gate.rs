//! The CI benchmark-regression gate.
//!
//! ```text
//! bench-gate <baseline.json> <current.json> [--threshold 0.25]
//! ```
//!
//! Compares a freshly generated suite report against the committed
//! baseline (both in the `BENCH_*.json` schema of `ts_bench::report`)
//! with the **variance-aware normalized min-of-k test**: each
//! benchmark's minimum per-round mean is compared, with the allowance
//! widened by the observed relative spread (capped at one extra
//! threshold) so noisy benchmarks do not flap while tight ones are held
//! close to the budget. Exits non-zero when any benchmark regresses
//! beyond its allowance or a baseline benchmark disappeared from the
//! current run. Rows with too few measurement rounds for the order
//! statistic (or pre-v3 baselines without one) are printed as `LOW-CONF`
//! and never fail the gate; improvements and new benchmarks pass.

use std::process::ExitCode;
use ts_bench::report::{gate, BenchReport, GateOutcome, GateVerdict};

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--threshold needs a fractional value (e.g. 0.25)");
                return ExitCode::from(2);
            };
            threshold = v;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench-gate <baseline.json> <current.json> [--threshold 0.25]");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    if baseline.suite != current.suite {
        eprintln!(
            "bench-gate: suite mismatch: baseline \"{}\" vs current \"{}\"",
            baseline.suite, current.suite
        );
        return ExitCode::from(2);
    }
    println!(
        "suite {:<20} baseline schema v{} ({} B payload), current schema v{} ({} B payload)",
        current.suite,
        baseline.schema_version,
        baseline.payload_bytes,
        current.schema_version,
        current.payload_bytes
    );
    let outcomes = gate(&baseline, &current, threshold);
    let mut failures = 0usize;
    let mut low_conf = 0usize;
    for outcome in &outcomes {
        match outcome {
            GateOutcome::Checked(c) => {
                let verdict = match c.verdict {
                    GateVerdict::Pass => "ok",
                    GateVerdict::Regressed => {
                        failures += 1;
                        "REGRESSED"
                    }
                    GateVerdict::LowConfidence => {
                        low_conf += 1;
                        "LOW-CONF"
                    }
                };
                println!(
                    "{verdict:<10} {:<48} {:>14.1} ns -> {:>14.1} ns  ({:+.1}%, allowed {:+.1}%)",
                    c.bench,
                    c.baseline_ns,
                    c.current_ns,
                    (c.ratio - 1.0) * 100.0,
                    c.allowance * 100.0
                );
            }
            GateOutcome::Missing { bench } => {
                println!("MISSING    {bench:<48} (in baseline, absent from current run)");
                failures += 1;
            }
        }
    }
    if low_conf > 0 {
        println!(
            "note: {low_conf} benchmark(s) had too few measurement rounds for the min-of-k \
             test (reported, not failed)"
        );
    }
    if failures > 0 {
        eprintln!(
            "bench-gate: {failures} benchmark(s) regressed beyond the min-of-k allowance \
             (or went missing) against {baseline_path}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench-gate: {} benchmark(s) within the {:.0}% (+noise) budget",
        outcomes.len(),
        threshold * 100.0
    );
    ExitCode::SUCCESS
}
