//! Criterion benchmark harness for the TensorSocket reproduction.
//!
//! Three targets:
//!
//! * `paper_artifacts` — regenerates every table and figure of the paper's
//!   evaluation (printing the rows once) and benchmarks the underlying
//!   simulation configurations, so `cargo bench` doubles as the
//!   reproduction run;
//! * `micro` — microbenchmarks of the substrate hot paths: payload
//!   pack/encode/unpack, PUB/SUB fan-out, collation into pooled slabs,
//!   flexible-batch planning, codec decode, the multi-worker loader, the
//!   processor-sharing engine, and the cross-process transport (which
//!   persists `BENCH_transport.json`);
//! * `producer_pipeline` — end-to-end producer throughput, serial vs
//!   pipelined, persisting `BENCH_producer_pipeline.json`.
//!
//! The [`report`] module is the shared suite-report format (schema
//! version, payload size, iteration floor) and the comparison logic
//! behind the `bench-gate` binary, which CI runs to fail the build when a
//! committed `BENCH_*.json` baseline regresses.
//!
//! Run with `cargo bench --workspace`.

pub mod report;
