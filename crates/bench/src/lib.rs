//! Criterion benchmark harness for the TensorSocket reproduction.
//!
//! Two targets:
//!
//! * `paper_artifacts` — regenerates every table and figure of the paper's
//!   evaluation (printing the rows once) and benchmarks the underlying
//!   simulation configurations, so `cargo bench` doubles as the
//!   reproduction run;
//! * `micro` — microbenchmarks of the substrate hot paths: payload
//!   pack/encode/unpack, PUB/SUB fan-out, collation into pooled slabs,
//!   flexible-batch planning, codec decode, the multi-worker loader, and
//!   the processor-sharing engine.
//!
//! Run with `cargo bench --workspace`.

/// Marker so the crate has a library target; all content lives in the
/// `benches/` directory.
pub const ABOUT: &str = "see benches/paper_artifacts.rs and benches/micro.rs";
