//! The shared benchmark-report format: one schema for every `BENCH_*.json`
//! suite the repo commits, plus the comparison logic the CI regression
//! gate runs.
//!
//! Each suite (transport, producer pipeline, …) writes a [`BenchReport`]
//! carrying the schema version, the payload size the suite moved per
//! iteration, and the iteration floor (the smallest iteration count among
//! its rows — a low floor means a noisy mean, which the gate reports
//! rather than silently trusting). Using one helper keeps the suites'
//! JSON comparable across PRs and lets [`gate`] diff any two reports.
//!
//! ## The normalized min-of-k regression test
//!
//! Each benchmark's measurement loop is split into `k` timed rounds
//! (`criterion::SAMPLE_ROUNDS`), and the row records the **minimum**
//! per-round mean next to the global mean. Timing noise on shared CI
//! runners is one-sided — interference only ever makes code *slower* —
//! so the min of k rounds estimates the true cost far more robustly
//! than a single mean. The gate compares minima, **normalized** by the
//! observed dispersion: a run's relative spread `(mean − min) / min`
//! widens the allowance (up to one extra threshold), so a benchmark
//! that is inherently noisy does not flap, while a tight benchmark is
//! held close to the threshold. Rows with fewer than
//! [`MIN_SAMPLES_FOR_MIN_TEST`] rounds (very slow benchmarks) carry too
//! little information for the order statistic: they are reported as
//! low-confidence instead of failing the gate.

use criterion::Measurement;
use std::fmt::Write as _;
use std::path::Path;

/// Version of the on-disk JSON schema; bump when fields change meaning.
/// v4 adds the optional per-row `p50_ns`/`p99_ns` round-quantile fields
/// (absent in v3 and earlier files, which still parse).
pub const SCHEMA_VERSION: u64 = 4;

/// Fewest measurement rounds (per side) for the min-of-k verdict to be
/// trusted; below it the gate reports low confidence instead of failing.
pub const MIN_SAMPLES_FOR_MIN_TEST: u64 = 3;

/// One benchmark's result row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Fully qualified benchmark id (`group/name`).
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration (all rounds).
    pub mean_ns: f64,
    /// Minimum per-round mean nanoseconds — the min-of-k statistic.
    pub min_ns: f64,
    /// Iterations measured (total).
    pub iters: u64,
    /// Measurement rounds behind `min_ns` (the `k` of min-of-k).
    pub samples: u64,
    /// Median of the per-round means (schema v4+; `None` when parsed
    /// from an older file or when the run recorded no rounds).
    pub p50_ns: Option<f64>,
    /// 99th percentile of the per-round means (schema v4+; `None` when
    /// parsed from an older file or when the run recorded no rounds).
    pub p99_ns: Option<f64>,
}

/// A suite's results plus the metadata needed to compare runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (e.g. `transport`, `producer_pipeline`).
    pub suite: String,
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Bytes the suite's throughput-annotated benchmarks move per
    /// iteration (0 when not applicable).
    pub payload_bytes: u64,
    /// Smallest iteration count among the rows — the confidence floor.
    pub iter_floor: u64,
    /// The rows.
    pub results: Vec<BenchRow>,
}

impl BenchReport {
    /// Builds a report from criterion measurements whose id starts with
    /// `prefix` (e.g. `"transport/"`).
    pub fn from_measurements(
        suite: &str,
        payload_bytes: u64,
        measurements: &[Measurement],
        prefix: &str,
    ) -> Self {
        let results: Vec<BenchRow> = measurements
            .iter()
            .filter(|m| m.id.starts_with(prefix))
            .map(|m| {
                // Round-quantiles only exist when rounds were recorded;
                // a quantile over zero samples would be a lie, not a 0.
                let quantile = |p: f64| {
                    (!m.sample_means_ns.is_empty())
                        .then(|| ts_metrics::percentile(&m.sample_means_ns, p))
                };
                BenchRow {
                    bench: m.id.clone(),
                    mean_ns: m.mean_ns,
                    min_ns: m.min_ns(),
                    iters: m.iters,
                    samples: (m.sample_means_ns.len() as u64).max(1),
                    p50_ns: quantile(50.0),
                    p99_ns: quantile(99.0),
                }
            })
            .collect();
        let iter_floor = results.iter().map(|r| r.iters).min().unwrap_or(0);
        Self {
            suite: suite.to_string(),
            schema_version: SCHEMA_VERSION,
            payload_bytes,
            iter_floor,
            results,
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"{}\",", escape(&self.suite));
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"payload_bytes\": {},", self.payload_bytes);
        let _ = writeln!(out, "  \"iter_floor\": {},", self.iter_floor);
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            // v4 quantile fields are written only when present, so a
            // report round-trips bit-equal through parse() either way.
            let mut quantiles = String::new();
            if let Some(p50) = r.p50_ns {
                let _ = write!(quantiles, ", \"p50_ns\": {p50:.1}");
            }
            if let Some(p99) = r.p99_ns {
                let _ = write!(quantiles, ", \"p99_ns\": {p99:.1}");
            }
            let _ = writeln!(
                out,
                "    {{\"bench\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"iters\": {}, \"samples\": {}{quantiles}}}{comma}",
                escape(&r.bench),
                r.mean_ns,
                r.min_ns,
                r.iters,
                r.samples
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes the report next to the workspace root (or wherever `path`
    /// points), logging instead of failing on IO errors so a read-only
    /// checkout never breaks a bench run.
    pub fn write(&self, path: &Path) {
        if let Err(e) = std::fs::write(path, self.to_json()) {
            eprintln!("could not write {}: {e}", path.display());
        }
    }

    /// Parses a report previously produced by [`BenchReport::to_json`]
    /// (or the pre-schema `v1` files, which lacked the metadata fields).
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let suite = obj
            .get("suite")
            .and_then(|v| v.as_str())
            .ok_or("missing \"suite\"")?
            .to_string();
        let schema_version = obj
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .unwrap_or(1);
        let payload_bytes = obj
            .get("payload_bytes")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let results_val = obj.get("results").ok_or("missing \"results\"")?;
        let rows = results_val.as_array().ok_or("\"results\" is not a list")?;
        let mut results = Vec::with_capacity(rows.len());
        for row in rows {
            let row_obj = row.as_object().ok_or("result row is not an object")?;
            let mean_ns = row_obj
                .get("mean_ns")
                .and_then(|v| v.as_f64())
                .ok_or("row missing \"mean_ns\"")?;
            results.push(BenchRow {
                bench: row_obj
                    .get("bench")
                    .and_then(|v| v.as_str())
                    .ok_or("row missing \"bench\"")?
                    .to_string(),
                mean_ns,
                // Pre-v3 rows carry no order statistics: fall back to the
                // mean with a single sample, which the gate treats as
                // low-confidence for the min test.
                min_ns: row_obj
                    .get("min_ns")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(mean_ns),
                iters: row_obj.get("iters").and_then(|v| v.as_u64()).unwrap_or(0),
                samples: row_obj.get("samples").and_then(|v| v.as_u64()).unwrap_or(1),
                // Optional since v4; pre-v4 files simply lack them.
                p50_ns: row_obj.get("p50_ns").and_then(|v| v.as_f64()),
                p99_ns: row_obj.get("p99_ns").and_then(|v| v.as_f64()),
            });
        }
        let iter_floor = obj
            .get("iter_floor")
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| results.iter().map(|r| r.iters).min().unwrap_or(0));
        Ok(Self {
            suite,
            schema_version,
            payload_bytes,
            iter_floor,
            results,
        })
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// How one benchmark fared under the normalized min-of-k test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Within the (noise-widened) budget.
    Pass,
    /// Slower than the budget allows — fails the gate.
    Regressed,
    /// Too few measurement rounds on one side for the min statistic
    /// (below [`MIN_SAMPLES_FOR_MIN_TEST`]): reported, never failed.
    LowConfidence,
}

/// One benchmark's comparison under the normalized min-of-k test.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Benchmark id.
    pub bench: String,
    /// Baseline statistic (min ns; mean for low-confidence rows).
    pub baseline_ns: f64,
    /// Current statistic (min ns; mean for low-confidence rows).
    pub current_ns: f64,
    /// current / baseline of the statistic.
    pub ratio: f64,
    /// Total allowed fractional slowdown: the base threshold plus the
    /// noise term (larger relative spread of the two runs, capped at one
    /// extra threshold).
    pub allowance: f64,
    /// The verdict.
    pub verdict: GateVerdict,
}

/// Outcome of gating one baseline row against the current report.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Present in both reports: compared.
    Checked(GateCheck),
    /// In the baseline but missing from the current run (coverage loss —
    /// always fails the gate).
    Missing {
        /// Benchmark id.
        bench: String,
    },
}

impl GateOutcome {
    /// True when this outcome fails the gate.
    pub fn fails(&self) -> bool {
        match self {
            GateOutcome::Checked(c) => c.verdict == GateVerdict::Regressed,
            GateOutcome::Missing { .. } => true,
        }
    }
}

/// The relative one-sided dispersion of a row: how far the mean sits
/// above the min, in units of the min. Interference inflates the mean
/// but not the min, so this is a direct noise estimate.
fn relative_spread(row: &BenchRow) -> f64 {
    if row.min_ns <= 0.0 {
        return 0.0;
    }
    ((row.mean_ns - row.min_ns) / row.min_ns).max(0.0)
}

/// Compares one benchmark across two reports with the variance-aware
/// normalized min-of-k test (see the module docs): minima are compared,
/// the allowance is `threshold + min(noise, threshold)` where `noise` is
/// the larger relative spread of the two rows, and rows with fewer than
/// [`MIN_SAMPLES_FOR_MIN_TEST`] rounds downgrade to a low-confidence
/// mean comparison that never fails.
pub fn min_of_k_check(base: &BenchRow, cur: &BenchRow, threshold: f64) -> GateCheck {
    let confident =
        base.samples >= MIN_SAMPLES_FOR_MIN_TEST && cur.samples >= MIN_SAMPLES_FOR_MIN_TEST;
    if !confident {
        let ratio = if base.mean_ns > 0.0 {
            cur.mean_ns / base.mean_ns
        } else {
            1.0
        };
        return GateCheck {
            bench: base.bench.clone(),
            baseline_ns: base.mean_ns,
            current_ns: cur.mean_ns,
            ratio,
            allowance: threshold,
            verdict: GateVerdict::LowConfidence,
        };
    }
    let ratio = if base.min_ns > 0.0 {
        cur.min_ns / base.min_ns
    } else {
        1.0
    };
    let noise = relative_spread(base).max(relative_spread(cur));
    let allowance = threshold + noise.min(threshold);
    let verdict = if ratio > 1.0 + allowance {
        GateVerdict::Regressed
    } else {
        GateVerdict::Pass
    };
    GateCheck {
        bench: base.bench.clone(),
        baseline_ns: base.min_ns,
        current_ns: cur.min_ns,
        ratio,
        allowance,
        verdict,
    }
}

/// Gates `current` against `baseline` row by row (benchmarks only in
/// `current` are new coverage and not reported).
pub fn gate(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<GateOutcome> {
    baseline
        .results
        .iter()
        .map(
            |base| match current.results.iter().find(|r| r.bench == base.bench) {
                Some(cur) => GateOutcome::Checked(min_of_k_check(base, cur, threshold)),
                None => GateOutcome::Missing {
                    bench: base.bench.clone(),
                },
            },
        )
        .collect()
}

/// A minimal recursive-descent JSON parser — the vendored dependency set
/// has no serde, and the gate must parse the reports it compares.
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            map.insert(key, value);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row with explicit statistics: (bench, mean, min, iters, samples).
    fn row(bench: &str, mean: f64, min: f64, iters: u64, samples: u64) -> BenchRow {
        BenchRow {
            bench: bench.to_string(),
            mean_ns: mean,
            min_ns: min,
            iters,
            samples,
            p50_ns: None,
            p99_ns: None,
        }
    }

    fn report(results: Vec<BenchRow>) -> BenchReport {
        let iter_floor = results.iter().map(|r| r.iters).min().unwrap_or(0);
        BenchReport {
            suite: "test".into(),
            schema_version: SCHEMA_VERSION,
            payload_bytes: 1024,
            iter_floor,
            results,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(vec![
            row("t/a", 123.4, 120.0, 1000, 5),
            row("t/b", 5.0e6, 4.5e6, 37, 5),
        ]);
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.suite, "test");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.payload_bytes, 1024);
        assert_eq!(parsed.iter_floor, 37);
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.results[0].bench, "t/a");
        assert!((parsed.results[0].mean_ns - 123.4).abs() < 1e-6);
        assert!((parsed.results[0].min_ns - 120.0).abs() < 1e-6);
        assert_eq!(parsed.results[0].samples, 5);
        assert_eq!(parsed.results[1].iters, 37);
    }

    #[test]
    fn v4_quantiles_round_trip_when_present() {
        let mut with = row("t/q", 120.0, 100.0, 50, 5);
        with.p50_ns = Some(118.5);
        with.p99_ns = Some(160.25);
        let r = report(vec![with, row("t/plain", 10.0, 9.0, 50, 5)]);
        let text = r.to_json();
        let parsed = BenchReport::parse(&text).unwrap();
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert!((parsed.results[0].p50_ns.unwrap() - 118.5).abs() < 0.1);
        assert!((parsed.results[0].p99_ns.unwrap() - 160.25).abs() < 0.1);
        // Rows without quantiles stay without them — the fields are not
        // written, not backfilled with zeros.
        assert_eq!(parsed.results[1].p50_ns, None);
        assert_eq!(parsed.results[1].p99_ns, None);
        assert!(!text.contains("\"p50_ns\": 0"), "no fabricated quantiles");
    }

    #[test]
    fn parses_v3_files_without_quantiles() {
        // Exactly what a committed v3 BENCH_*.json row looks like.
        let v3 = "{\n\"suite\": \"transport\",\n\"schema_version\": 3,\n\
                  \"payload_bytes\": 64,\n\"iter_floor\": 10,\n\"results\": [\n  \
                  {\"bench\": \"transport/x\", \"mean_ns\": 10.0, \"min_ns\": 9.0, \
                  \"iters\": 10, \"samples\": 5}\n]\n}\n";
        let parsed = BenchReport::parse(v3).unwrap();
        assert_eq!(parsed.schema_version, 3);
        assert_eq!(parsed.results[0].p50_ns, None);
        assert_eq!(parsed.results[0].p99_ns, None);
        // And the gate still compares v3 baselines against v4 reports.
        let cur = report(vec![{
            let mut r = row("transport/x", 10.5, 9.2, 10, 5);
            r.p50_ns = Some(10.4);
            r.p99_ns = Some(11.0);
            r
        }]);
        let outcomes = gate(&parsed, &cur, 0.25);
        assert!(!outcomes[0].fails());
    }

    #[test]
    fn parses_pre_schema_v1_files() {
        // The format PR 1 wrote: no schema_version/iter_floor fields.
        let v1 = "{\n\"suite\": \"transport\",\n\"payload_bytes\": 64,\n\"results\": [\n  \
                  {\"bench\": \"transport/x\", \"mean_ns\": 10.0, \"iters\": 5}\n]\n}\n";
        let parsed = BenchReport::parse(v1).unwrap();
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.iter_floor, 5);
        assert_eq!(parsed.results.len(), 1);
        // Order statistics backfill: min = mean, one sample (= the gate
        // treats it as low-confidence).
        assert!((parsed.results[0].min_ns - 10.0).abs() < 1e-9);
        assert_eq!(parsed.results[0].samples, 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{\"suite\": \"x\"}").is_err());
        assert!(BenchReport::parse("{\"suite\": \"x\", \"results\": [1]} trailing").is_err());
    }

    #[test]
    fn min_of_k_passes_within_budget() {
        // 10% slower min with tight spreads: inside the 25% budget.
        let c = min_of_k_check(
            &row("t/a", 102.0, 100.0, 100, 5),
            &row("t/a", 112.0, 110.0, 100, 5),
            0.25,
        );
        assert_eq!(c.verdict, GateVerdict::Pass);
        assert!((c.ratio - 1.1).abs() < 1e-9);
        // Tight runs (2% spread) barely widen the allowance.
        assert!(c.allowance < 0.28, "allowance {}", c.allowance);
    }

    #[test]
    fn min_of_k_fails_clear_regressions() {
        // 2x slower min, tight spreads on both sides: must fail.
        let c = min_of_k_check(
            &row("t/a", 102.0, 100.0, 100, 5),
            &row("t/a", 205.0, 200.0, 100, 5),
            0.25,
        );
        assert_eq!(c.verdict, GateVerdict::Regressed);
        assert!((c.ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_widens_allowance_but_is_capped() {
        // A very noisy current run (mean 2x its min) widens the allowance
        // by at most one extra threshold: 28% slower min passes at 25%…
        let noisy_pass = min_of_k_check(
            &row("t/a", 101.0, 100.0, 100, 5),
            &row("t/a", 256.0, 128.0, 100, 5),
            0.25,
        );
        assert!((noisy_pass.allowance - 0.5).abs() < 1e-9, "noise capped");
        assert_eq!(noisy_pass.verdict, GateVerdict::Pass, "1.28 <= 1.5");
        // …but a 60% slower min fails even with maximal noise allowance.
        let noisy_fail = min_of_k_check(
            &row("t/a", 101.0, 100.0, 100, 5),
            &row("t/a", 320.0, 160.0, 100, 5),
            0.25,
        );
        assert_eq!(noisy_fail.verdict, GateVerdict::Regressed);
    }

    #[test]
    fn low_iteration_rows_never_hard_fail() {
        // One round per side (a very slow benchmark): even a huge ratio
        // is reported as low-confidence, not failed — a single sample
        // cannot distinguish regression from interference.
        let c = min_of_k_check(
            &row("t/slow", 100.0, 100.0, 1, 1),
            &row("t/slow", 300.0, 300.0, 1, 1),
            0.25,
        );
        assert_eq!(c.verdict, GateVerdict::LowConfidence);
        assert!((c.ratio - 3.0).abs() < 1e-9);
        let outcome = GateOutcome::Checked(c);
        assert!(!outcome.fails(), "low-confidence must not fail the gate");
        // The same ratio with enough rounds fails.
        let confident = min_of_k_check(
            &row("t/slow", 100.0, 100.0, 10, 5),
            &row("t/slow", 300.0, 300.0, 10, 5),
            0.25,
        );
        assert_eq!(confident.verdict, GateVerdict::Regressed);
    }

    #[test]
    fn gate_flags_missing_rows_and_skips_new_coverage() {
        let base = report(vec![
            row("t/a", 100.0, 98.0, 10, 5),
            row("t/gone", 100.0, 98.0, 10, 5),
        ]);
        let cur = report(vec![
            row("t/a", 101.0, 99.0, 10, 5),
            row("t/new", 1.0, 1.0, 10, 5),
        ]);
        let outcomes = gate(&base, &cur, 0.25);
        assert_eq!(outcomes.len(), 2, "new coverage is not an outcome");
        assert!(!outcomes[0].fails());
        assert!(outcomes[1].fails(), "missing bench fails");
        assert!(matches!(&outcomes[1], GateOutcome::Missing { bench } if bench == "t/gone"));
    }

    #[test]
    fn from_measurements_filters_and_floors() {
        let m = |id: &str, mean: f64, iters: u64, samples: &[f64]| Measurement {
            id: id.into(),
            mean_ns: mean,
            iters,
            sample_means_ns: samples.to_vec(),
            throughput: None,
        };
        let ms = vec![
            m("transport/a", 10.0, 100, &[11.0, 9.5, 10.5]),
            m("other/b", 20.0, 2, &[]),
            m("transport/c", 30.0, 7, &[31.0, 29.0]),
        ];
        let r = BenchReport::from_measurements("transport", 64, &ms, "transport/");
        assert_eq!(r.results.len(), 2);
        assert_eq!(r.iter_floor, 7);
        assert_eq!(r.payload_bytes, 64);
        assert!((r.results[0].min_ns - 9.5).abs() < 1e-9);
        assert_eq!(r.results[0].samples, 3);
        assert_eq!(r.results[1].samples, 2);
        // v4: quantiles computed over the recorded round means.
        assert!((r.results[0].p50_ns.unwrap() - 10.5).abs() < 1e-9);
        assert!(r.results[0].p99_ns.unwrap() <= 11.0);
        assert!(r.results[1].p50_ns.is_some());
    }
}
