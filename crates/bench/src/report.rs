//! The shared benchmark-report format: one schema for every `BENCH_*.json`
//! suite the repo commits, plus the comparison logic the CI regression
//! gate runs.
//!
//! Each suite (transport, producer pipeline, …) writes a [`BenchReport`]
//! carrying the schema version, the payload size the suite moved per
//! iteration, and the iteration floor (the smallest iteration count among
//! its rows — a low floor means a noisy mean, which the gate reports
//! rather than silently trusting). Using one helper keeps the suites'
//! JSON comparable across PRs and lets [`compare`] diff any two reports.

use criterion::Measurement;
use std::fmt::Write as _;
use std::path::Path;

/// Version of the on-disk JSON schema; bump when fields change meaning.
pub const SCHEMA_VERSION: u64 = 2;

/// One benchmark's result row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Fully qualified benchmark id (`group/name`).
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// A suite's results plus the metadata needed to compare runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (e.g. `transport`, `producer_pipeline`).
    pub suite: String,
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Bytes the suite's throughput-annotated benchmarks move per
    /// iteration (0 when not applicable).
    pub payload_bytes: u64,
    /// Smallest iteration count among the rows — the confidence floor.
    pub iter_floor: u64,
    /// The rows.
    pub results: Vec<BenchRow>,
}

impl BenchReport {
    /// Builds a report from criterion measurements whose id starts with
    /// `prefix` (e.g. `"transport/"`).
    pub fn from_measurements(
        suite: &str,
        payload_bytes: u64,
        measurements: &[Measurement],
        prefix: &str,
    ) -> Self {
        let results: Vec<BenchRow> = measurements
            .iter()
            .filter(|m| m.id.starts_with(prefix))
            .map(|m| BenchRow {
                bench: m.id.clone(),
                mean_ns: m.mean_ns,
                iters: m.iters,
            })
            .collect();
        let iter_floor = results.iter().map(|r| r.iters).min().unwrap_or(0);
        Self {
            suite: suite.to_string(),
            schema_version: SCHEMA_VERSION,
            payload_bytes,
            iter_floor,
            results,
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"{}\",", escape(&self.suite));
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"payload_bytes\": {},", self.payload_bytes);
        let _ = writeln!(out, "  \"iter_floor\": {},", self.iter_floor);
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"bench\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}",
                escape(&r.bench),
                r.mean_ns,
                r.iters
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes the report next to the workspace root (or wherever `path`
    /// points), logging instead of failing on IO errors so a read-only
    /// checkout never breaks a bench run.
    pub fn write(&self, path: &Path) {
        if let Err(e) = std::fs::write(path, self.to_json()) {
            eprintln!("could not write {}: {e}", path.display());
        }
    }

    /// Parses a report previously produced by [`BenchReport::to_json`]
    /// (or the pre-schema `v1` files, which lacked the metadata fields).
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let suite = obj
            .get("suite")
            .and_then(|v| v.as_str())
            .ok_or("missing \"suite\"")?
            .to_string();
        let schema_version = obj
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .unwrap_or(1);
        let payload_bytes = obj
            .get("payload_bytes")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let results_val = obj.get("results").ok_or("missing \"results\"")?;
        let rows = results_val.as_array().ok_or("\"results\" is not a list")?;
        let mut results = Vec::with_capacity(rows.len());
        for row in rows {
            let row_obj = row.as_object().ok_or("result row is not an object")?;
            results.push(BenchRow {
                bench: row_obj
                    .get("bench")
                    .and_then(|v| v.as_str())
                    .ok_or("row missing \"bench\"")?
                    .to_string(),
                mean_ns: row_obj
                    .get("mean_ns")
                    .and_then(|v| v.as_f64())
                    .ok_or("row missing \"mean_ns\"")?,
                iters: row_obj.get("iters").and_then(|v| v.as_u64()).unwrap_or(0),
            });
        }
        let iter_floor = obj
            .get("iter_floor")
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| results.iter().map(|r| r.iters).min().unwrap_or(0));
        Ok(Self {
            suite,
            schema_version,
            payload_bytes,
            iter_floor,
            results,
        })
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Outcome of comparing one benchmark across two reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Present in both; `ratio` = current mean / baseline mean.
    Compared {
        /// Benchmark id.
        bench: String,
        /// Baseline mean ns.
        baseline_ns: f64,
        /// Current mean ns.
        current_ns: f64,
        /// current / baseline.
        ratio: f64,
    },
    /// In the baseline but missing from the current run (coverage loss).
    Missing {
        /// Benchmark id.
        bench: String,
    },
}

impl Delta {
    /// True when this delta regresses beyond `threshold` (fractional; 0.25
    /// = 25% slower) — a missing benchmark always counts as a regression.
    pub fn regressed(&self, threshold: f64) -> bool {
        match self {
            Delta::Compared { ratio, .. } => *ratio > 1.0 + threshold,
            Delta::Missing { .. } => true,
        }
    }
}

/// Compares `current` against `baseline` row by row (benchmarks only in
/// `current` are new coverage and not reported).
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Vec<Delta> {
    baseline
        .results
        .iter()
        .map(|base| {
            match current.results.iter().find(|r| r.bench == base.bench) {
                Some(cur) if base.mean_ns > 0.0 => Delta::Compared {
                    bench: base.bench.clone(),
                    baseline_ns: base.mean_ns,
                    current_ns: cur.mean_ns,
                    ratio: cur.mean_ns / base.mean_ns,
                },
                // A zero-mean baseline row cannot be ratioed; treat as new.
                Some(cur) => Delta::Compared {
                    bench: base.bench.clone(),
                    baseline_ns: base.mean_ns,
                    current_ns: cur.mean_ns,
                    ratio: 1.0,
                },
                None => Delta::Missing {
                    bench: base.bench.clone(),
                },
            }
        })
        .collect()
}

/// A minimal recursive-descent JSON parser — the vendored dependency set
/// has no serde, and the gate must parse the reports it compares.
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            map.insert(key, value);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, f64, u64)]) -> BenchReport {
        let results: Vec<BenchRow> = rows
            .iter()
            .map(|(b, m, i)| BenchRow {
                bench: b.to_string(),
                mean_ns: *m,
                iters: *i,
            })
            .collect();
        let iter_floor = results.iter().map(|r| r.iters).min().unwrap_or(0);
        BenchReport {
            suite: "test".into(),
            schema_version: SCHEMA_VERSION,
            payload_bytes: 1024,
            iter_floor,
            results,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(&[("t/a", 123.4, 1000), ("t/b", 5.0e6, 37)]);
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.suite, "test");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.payload_bytes, 1024);
        assert_eq!(parsed.iter_floor, 37);
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.results[0].bench, "t/a");
        assert!((parsed.results[0].mean_ns - 123.4).abs() < 1e-6);
        assert_eq!(parsed.results[1].iters, 37);
    }

    #[test]
    fn parses_pre_schema_v1_files() {
        // The format PR 1 wrote: no schema_version/iter_floor fields.
        let v1 = "{\n\"suite\": \"transport\",\n\"payload_bytes\": 64,\n\"results\": [\n  \
                  {\"bench\": \"transport/x\", \"mean_ns\": 10.0, \"iters\": 5}\n]\n}\n";
        let parsed = BenchReport::parse(v1).unwrap();
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.iter_floor, 5);
        assert_eq!(parsed.results.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{\"suite\": \"x\"}").is_err());
        assert!(BenchReport::parse("{\"suite\": \"x\", \"results\": [1]} trailing").is_err());
    }

    #[test]
    fn compare_flags_regressions_and_missing_rows() {
        let base = report(&[("t/a", 100.0, 10), ("t/b", 100.0, 10), ("t/c", 100.0, 10)]);
        let cur = report(&[("t/a", 110.0, 10), ("t/b", 200.0, 10)]);
        let deltas = compare(&base, &cur);
        assert_eq!(deltas.len(), 3);
        assert!(!deltas[0].regressed(0.25), "10% slower is within budget");
        assert!(deltas[1].regressed(0.25), "2x slower must fail");
        assert!(deltas[2].regressed(0.25), "missing bench must fail");
        match &deltas[1] {
            Delta::Compared { ratio, .. } => assert!((ratio - 2.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn new_benchmarks_in_current_are_not_deltas() {
        let base = report(&[("t/a", 100.0, 10)]);
        let cur = report(&[("t/a", 90.0, 10), ("t/new", 1.0, 10)]);
        assert_eq!(compare(&base, &cur).len(), 1);
    }

    #[test]
    fn from_measurements_filters_and_floors() {
        let ms = vec![
            Measurement {
                id: "transport/a".into(),
                mean_ns: 10.0,
                iters: 100,
                throughput: None,
            },
            Measurement {
                id: "other/b".into(),
                mean_ns: 20.0,
                iters: 2,
                throughput: None,
            },
            Measurement {
                id: "transport/c".into(),
                mean_ns: 30.0,
                iters: 7,
                throughput: None,
            },
        ];
        let r = BenchReport::from_measurements("transport", 64, &ms, "transport/");
        assert_eq!(r.results.len(), 2);
        assert_eq!(r.iter_floor, 7);
        assert_eq!(r.payload_bytes, 64);
    }
}
