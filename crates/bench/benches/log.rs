//! Durable batch log: raw segment throughput and the hot-path cost of
//! the producer's log tee.
//!
//! Two layers, one suite:
//!
//! * `log/append` / `log/read` — `ts-log` in isolation: CRC-framed,
//!   mmap-indexed appends of batch-sized records into rotating segments,
//!   and offset-addressed reads back out of them. This is the bandwidth
//!   budget the producer's background spiller has to live inside.
//! * `log/epoch/off` vs `log/epoch/on` — the claim that matters: a full
//!   producer→consumer epoch over `inproc://` with and without `.log(dir)`.
//!   The tee hands the already-collated batch to a background spiller
//!   thread, so the `on` row must not regress the epoch wall time (the
//!   CI gate holds both rows, which pins the tee's hot-path cost at
//!   noise level) — and `stage.publish_copy_bytes` stays 0, asserted
//!   here on every run.
//!
//! Writes `BENCH_log.json` in the shared report schema for the CI bench
//! gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_log::{BatchLog, LogConfig};

/// Batch-sized record: ~the wire frame of a 32×3×16×16 f32 batch.
const RECORD_BYTES: usize = 100 * 1024;
const RECORDS: u64 = 256;

const SAMPLES: usize = 512;
const BATCH: usize = 32;
const SIDE: usize = 16;

fn fresh_dir(tag: &str, round: u32) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ts-bench-log-{}-{tag}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn make_loader() -> DataLoader {
    DataLoader::new(
        Arc::new(SyntheticImageDataset::new(SAMPLES, SIDE, SIDE, 11).with_encoded_len(1_024)),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: 2,
            prefetch_factor: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

/// One full epoch, producer→consumer over inproc, optionally logged.
fn run_epoch(logged: bool, endpoint: &str, log_dir: &std::path::Path) -> u64 {
    let ctx = TsContext::host_only();
    let mut builder = Producer::builder()
        .context(&ctx)
        .endpoint(endpoint)
        .epochs(1)
        .poll_interval(Duration::from_micros(200))
        .first_consumer_timeout(Some(Duration::from_secs(30)));
    if logged {
        builder = builder.log(log_dir);
    }
    let producer = builder.spawn(make_loader()).expect("spawn producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .connect(endpoint)
        .expect("connect consumer");
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        std::hint::black_box(batch.labels.view_bytes());
        batches += 1;
    }
    producer.join().expect("producer join");
    // The tee must never put bytes on the publish path.
    assert_eq!(ctx.metrics.counter("stage.publish_copy_bytes").get(), 0);
    if logged {
        assert!(ctx.metrics.counter("stage.log_append_bytes").get() > 0);
    }
    let _ = std::fs::remove_dir_all(log_dir);
    batches
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("log");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));

    // --- raw segment append: RECORDS batch-sized records per iter ---
    let payload = vec![0xabu8; RECORD_BYTES];
    g.throughput(Throughput::Bytes(RECORD_BYTES as u64 * RECORDS));
    let mut round = 0u32;
    g.bench_function("append", |b| {
        b.iter(|| {
            round += 1;
            let dir = fresh_dir("append", round);
            let mut log = BatchLog::open(&LogConfig::new(&dir), 0).expect("open log");
            for seq in 0..RECORDS {
                log.append(seq, 0, seq, &payload).expect("append");
            }
            let appended = log.appended_bytes();
            drop(log);
            let _ = std::fs::remove_dir_all(&dir);
            appended
        })
    });

    // --- raw reads back out of a retained log ---
    let read_dir = fresh_dir("read", 0);
    let mut log = BatchLog::open(&LogConfig::new(&read_dir), 0).expect("open log");
    for seq in 0..RECORDS {
        log.append(seq, 0, seq, &payload).expect("append");
    }
    g.bench_function("read", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for seq in 0..RECORDS {
                total += log.read(seq).expect("retained record").len();
            }
            total
        })
    });
    drop(log);
    let _ = std::fs::remove_dir_all(&read_dir);

    // --- the hot-path claim: logged epoch vs unlogged epoch ---
    let epoch_bytes = (SAMPLES * 3 * SIDE * SIDE * 4) as u64;
    g.throughput(Throughput::Bytes(epoch_bytes));
    let mut round = 0u32;
    for (tag, logged) in [("off", false), ("on", true)] {
        g.bench_with_input(BenchmarkId::new("epoch", tag), &logged, |b, &logged| {
            b.iter(|| {
                round += 1;
                let endpoint = format!("inproc://bench-log-{tag}-{round}");
                let dir = fresh_dir(tag, round);
                let batches = run_epoch(logged, &endpoint, &dir);
                assert_eq!(batches as usize, SAMPLES / BATCH);
                batches
            })
        });
    }
    g.finish();

    // Persist in the shared schema for the CI bench gate.
    let report = ts_bench::report::BenchReport::from_measurements(
        "log",
        epoch_bytes,
        c.measurements(),
        "log/",
    );
    let pick = |suffix: &str| {
        report
            .results
            .iter()
            .find(|r| r.bench.ends_with(suffix))
            .map(|r| r.mean_ns)
    };
    if let (Some(off), Some(on)) = (pick("/epoch/off"), pick("/epoch/on")) {
        println!(
            "log tee hot-path cost: {:+.1}% (epoch {:.1} ms unlogged -> {:.1} ms logged)",
            (on / off - 1.0) * 100.0,
            off / 1e6,
            on / 1e6
        );
    }
    report.write(
        &std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_log.json"),
    );
}

criterion_group!(log, bench_log);
criterion_main!(log);
