//! End-to-end producer throughput: serial vs pipelined.
//!
//! One producer + one consumer over `inproc://`, a synthetic image
//! dataset with the real two-part loading cost — per-sample fetch latency
//! (the disk/NFS read stand-in) plus decode CPU ∝ pixels (the JPEG
//! stand-in) — full epochs consumed to completion. The only knob that
//! varies is the loader's `num_workers`:
//!
//! * `workers/0` — the serial producer: decode, collate and publish all
//!   on the publish thread;
//! * `workers/1`, `workers/4` — the pipelined producer: a feeder stage
//!   (backed by 1 or 4 loader workers) prepares batches ahead of the
//!   publish cursor while the publish loop stages and announces.
//!
//! The `sharded/<n>` variants run the same epoch through an n-shard
//! producer group (each shard a feeder+publish pipeline over
//! its disjoint dataset partition, in lockstep under the epoch
//! coordinator) consumed through one interleaving consumer — the
//! multi-producer scaling axis: on multi-core runners `sharded/2`
//! should beat `sharded/1` because the shards' loader workers and
//! publish stages run concurrently.
//!
//! The suite asserts nothing itself; `BENCH_producer_pipeline.json` lands
//! at the repo root in the shared report schema, the CI gate compares it
//! against the committed baseline, and the committed numbers document the
//! pipelining win (≥1.5× at 4 workers on this dataset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};

const SAMPLES: usize = 512;
const BATCH: usize = 32;
const SIDE: usize = 64; // 3×64×64 images
const ENCODED_LEN: usize = 16_384;
/// Per-sample storage fetch latency (conservative local-SSD ballpark).
const FETCH_LATENCY: Duration = Duration::from_micros(100);

fn make_loader(workers: usize) -> DataLoader {
    DataLoader::new(
        Arc::new(
            SyntheticImageDataset::new(SAMPLES, SIDE, SIDE, 11)
                .with_encoded_len(ENCODED_LEN)
                .with_fetch_latency(FETCH_LATENCY),
        ),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: workers,
            prefetch_factor: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

/// Runs one full epoch through producer + consumer; returns batches seen.
fn run_epoch(workers: usize, endpoint: &str) -> u64 {
    let ctx = TsContext::host_only();
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(endpoint)
        .epochs(1)
        .poll_interval(Duration::from_micros(200))
        .first_consumer_timeout(Some(Duration::from_secs(30)))
        .spawn(make_loader(workers))
        .expect("spawn producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        // The default 200 ms tick would dominate the measurement: the
        // consumer's drop joins the heartbeat thread mid-sleep.
        .heartbeat_interval(Duration::from_millis(5))
        .connect(endpoint)
        .expect("connect consumer");
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        // The "training step": read one byte per sample so the batch is
        // touched but consumption stays far cheaper than loading.
        std::hint::black_box(batch.labels.view_bytes());
        batches += 1;
    }
    producer.join().expect("producer join");
    batches
}

/// Like [`run_epoch`], but with a builder-provisioned shared-memory
/// arena: the feeder collates straight into leased slots and the publish
/// loop adopts the placements — the zero-copy shm publish shape. The
/// committed numbers document that full cross-process shm semantics ride
/// within a few percent of the heap path on this loader-bound epoch,
/// with zero payload bytes moved at publish time (asserted below).
fn run_leased_epoch(workers: usize, endpoint: &str, round: u32) -> u64 {
    let ctx = TsContext::host_only();
    let arena_path = std::env::temp_dir().join(format!(
        "ts-bench-leased-{}-{round}.arena",
        std::process::id()
    ));
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(endpoint)
        .epochs(1)
        .poll_interval(Duration::from_micros(200))
        .first_consumer_timeout(Some(Duration::from_secs(30)))
        .arena(&arena_path)
        .spawn(make_loader(workers))
        .expect("spawn leased producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .heartbeat_interval(Duration::from_millis(5))
        .connect(endpoint)
        .expect("connect consumer");
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        std::hint::black_box(batch.labels.view_bytes());
        batches += 1;
    }
    producer.join().expect("producer join");
    assert_eq!(
        ctx.metrics.counter("stage.publish_copy_bytes").get(),
        0,
        "the benched path must be the zero-copy one"
    );
    let _ = std::fs::remove_file(&arena_path);
    batches
}

/// Runs one full epoch through an n-shard producer group + one
/// interleaving consumer; returns batches seen.
fn run_sharded_epoch(shards: usize, endpoint: &str) -> u64 {
    let ctx = TsContext::host_only();
    let loaders = DataLoader::sharded(
        Arc::new(
            SyntheticImageDataset::new(SAMPLES, SIDE, SIDE, 11)
                .with_encoded_len(ENCODED_LEN)
                .with_fetch_latency(FETCH_LATENCY),
        ),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: 2,
            prefetch_factor: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
        shards,
    );
    let group = Producer::builder()
        .context(&ctx)
        .endpoint(endpoint)
        .epochs(1)
        .poll_interval(Duration::from_micros(200))
        .first_consumer_timeout(Some(Duration::from_secs(30)))
        .spawn_sharded(loaders)
        .expect("spawn sharded group");
    // The consumer is NOT told the shard count: the handshake is.
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .heartbeat_interval(Duration::from_millis(5))
        .connect(endpoint)
        .expect("connect consumer");
    assert_eq!(consumer.num_shards(), shards);
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        std::hint::black_box(batch.labels.view_bytes());
        batches += 1;
    }
    group.join().expect("group join");
    batches
}

fn bench_producer_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("producer_pipeline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    let epoch_bytes = (SAMPLES / BATCH * BATCH) as u64 * (3 * SIDE * SIDE) as u64;
    g.throughput(Throughput::Bytes(epoch_bytes));
    let mut round = 0u32;
    for workers in [0usize, 1, 4] {
        g.bench_with_input(
            BenchmarkId::new("epoch", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    round += 1;
                    let endpoint = format!("inproc://bench-pipeline-{workers}-{round}");
                    let batches = run_epoch(workers, &endpoint);
                    assert_eq!(batches as usize, SAMPLES / BATCH);
                    batches
                })
            },
        );
    }
    // Zero-copy shm publish: the pipelined epoch again, now with an
    // arena + recycling slot pools bound (leased collate, metadata-only
    // announce). Compare against `epoch/4`.
    let mut leased_round = 0u32;
    g.bench_with_input(
        BenchmarkId::new("leased", 4usize),
        &4usize,
        |b, &workers| {
            b.iter(|| {
                leased_round += 1;
                let endpoint = format!("inproc://bench-leased-{workers}-{leased_round}");
                let batches = run_leased_epoch(workers, &endpoint, leased_round);
                assert_eq!(batches as usize, SAMPLES / BATCH);
                batches
            })
        },
    );
    // Multi-producer sharding: same epoch, 1 vs 2 shard pipelines.
    let mut sharded_round = 0u32;
    for shards in [1usize, 2] {
        g.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    sharded_round += 1;
                    let endpoint = format!("inproc://bench-sharded-{shards}-{sharded_round}");
                    let batches = run_sharded_epoch(shards, &endpoint);
                    assert_eq!(batches as usize, SAMPLES / BATCH);
                    batches
                })
            },
        );
    }
    g.finish();

    // Persist in the shared schema for the CI bench gate.
    let report = ts_bench::report::BenchReport::from_measurements(
        "producer_pipeline",
        epoch_bytes,
        c.measurements(),
        "producer_pipeline/",
    );
    let serial = report
        .results
        .iter()
        .find(|r| r.bench.ends_with("/epoch/0"))
        .map(|r| r.mean_ns);
    let piped = report
        .results
        .iter()
        .find(|r| r.bench.ends_with("/epoch/4"))
        .map(|r| r.mean_ns);
    if let (Some(serial), Some(piped)) = (serial, piped) {
        println!(
            "pipelined producer speedup at 4 workers: {:.2}x (serial {:.1} ms -> pipelined {:.1} ms)",
            serial / piped,
            serial / 1e6,
            piped / 1e6
        );
    }
    let leased = report
        .results
        .iter()
        .find(|r| r.bench.ends_with("/leased/4"))
        .map(|r| r.mean_ns);
    if let (Some(piped), Some(leased)) = (piped, leased) {
        println!(
            "zero-copy shm publish vs heap publish at 4 workers: {:+.1}% \
             (heap {:.1} ms -> leased {:.1} ms)",
            (leased / piped - 1.0) * 100.0,
            piped / 1e6,
            leased / 1e6
        );
    }
    let one_shard = report
        .results
        .iter()
        .find(|r| r.bench.ends_with("/sharded/1"))
        .map(|r| r.mean_ns);
    let two_shards = report
        .results
        .iter()
        .find(|r| r.bench.ends_with("/sharded/2"))
        .map(|r| r.mean_ns);
    if let (Some(one), Some(two)) = (one_shard, two_shards) {
        println!(
            "sharded producer scaling at 2 shards: {:.2}x (1 shard {:.1} ms -> 2 shards {:.1} ms)",
            one / two,
            one / 1e6,
            two / 1e6
        );
    }
    report.write(
        &std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_producer_pipeline.json"),
    );
}

criterion_group!(producer_pipeline, bench_producer_pipeline);
criterion_main!(producer_pipeline);
