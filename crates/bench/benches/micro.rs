//! Microbenchmarks of the substrate hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::protocol::flex::plan_flex;
use tensorsocket::protocol::messages::{AnnounceContent, BatchAnnounce, DataMsg, StreamedTensor};
use ts_data::{codec, DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_device::DeviceId;
use ts_sim::ps::{PsResource, Sharing};
use ts_socket::{coalescing_cell, Context, Multipart, PubSocket, SubSocket};
use ts_tensor::{collate, DType, MemoryPool, SharedRegistry, Tensor, TensorPayload};

/// Payload pack + wire encode + decode + registry unpack — the entire
/// per-batch sharing overhead (everything TensorSocket does *instead of*
/// copying the batch).
fn bench_payload_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("payload_path");
    let batch = Tensor::rand_u8(&[128, 3, 224, 224], DeviceId::Gpu(0), 1);
    let registry = SharedRegistry::new();
    registry.register(batch.storage());
    g.throughput(Throughput::Bytes(batch.view_bytes() as u64));
    g.bench_function("pack_encode_decode_unpack_128x3x224x224", |b| {
        b.iter(|| {
            let payload = TensorPayload::pack(&batch);
            let wire = payload.encode();
            let decoded = TensorPayload::decode(&wire).unwrap();
            std::hint::black_box(decoded.unpack(&registry).unwrap())
        })
    });
    // compare: what copying the same batch would cost
    g.bench_function("memcpy_equivalent_128x3x224x224", |b| {
        b.iter(|| std::hint::black_box(batch.gather_bytes()))
    });
    g.finish();
}

/// The flight recorder's hot path: one span claim/commit into the
/// lock-free trace ring, exactly what every instrumented pipeline stage
/// pays per batch — and the reason the recorder can stay always-on.
fn bench_trace_record(c: &mut Criterion) {
    use ts_metrics::{SpanKind, TraceRing};
    let mut g = c.benchmark_group("trace");
    let ring = TraceRing::new();
    let mut seq = 0u64;
    g.bench_function("record_claim_commit", |b| {
        b.iter(|| {
            seq = seq.wrapping_add(1);
            ring.record(1, 0, seq, SpanKind::Publish, 100, 200);
            std::hint::black_box(&ring);
        })
    });
    // The full per-batch producer-side stamp load: the span sequence one
    // batch accrues on its way out, plus the completion flip.
    let mut seq2 = 0u64;
    g.bench_function("record_full_batch_lifecycle", |b| {
        b.iter(|| {
            seq2 = seq2.wrapping_add(1);
            for kind in [
                SpanKind::Fetch,
                SpanKind::CopyWait,
                SpanKind::H2d,
                SpanKind::Publish,
                SpanKind::Announce,
                SpanKind::Ack,
            ] {
                ring.record(2, 0, seq2, kind, 100, 200);
            }
            ring.complete(2, 0, seq2);
            std::hint::black_box(&ring);
        })
    });
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let announce = DataMsg::Batch(BatchAnnounce {
        seq: 42,
        epoch: 1,
        index_in_epoch: 42,
        last_in_epoch: false,
        content: AnnounceContent::Shared {
            fields: vec![TensorPayload::pack(&Tensor::zeros(
                &[128, 3, 224, 224],
                DType::U8,
                DeviceId::Gpu(0),
            ))],
            labels: TensorPayload::pack(&Tensor::zeros(&[128], DType::I64, DeviceId::Gpu(0))),
        },
    });
    g.bench_function("announce_encode", |b| b.iter(|| announce.encode()));
    let wire = announce.encode();
    g.bench_function("announce_decode", |b| {
        b.iter(|| DataMsg::decode(&wire).unwrap())
    });
    g.finish();
}

fn bench_pubsub(c: &mut Criterion) {
    let mut g = c.benchmark_group("pubsub");
    for subs in [1usize, 4, 8] {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://bench").unwrap();
        let sockets: Vec<SubSocket> = (0..subs)
            .map(|_| {
                let s = SubSocket::connect(&ctx, "inproc://bench");
                s.subscribe(b"");
                s
            })
            .collect();
        let msg = Multipart::single(bytes::Bytes::from(vec![0u8; 128]));
        g.bench_with_input(BenchmarkId::new("fanout_drain", subs), &subs, |b, _| {
            b.iter(|| {
                publisher.send(b"t", msg.clone()).unwrap();
                for s in &sockets {
                    while let Ok(Some(_)) = s.try_recv() {}
                }
            })
        });
    }
    g.finish();
}

fn bench_collate(c: &mut Criterion) {
    let mut g = c.benchmark_group("collate");
    let samples: Vec<Tensor> = (0..128)
        .map(|i| Tensor::rand_u8(&[3, 64, 64], DeviceId::Cpu, i))
        .collect();
    let bytes: u64 = samples.iter().map(|t| t.view_bytes() as u64).sum();
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("stack0_128x3x64x64", |b| {
        b.iter(|| collate::stack0(&samples).unwrap())
    });
    let batches: Vec<Tensor> = (0..4)
        .map(|i| Tensor::rand_u8(&[32, 3, 64, 64], DeviceId::Cpu, i))
        .collect();
    g.bench_function("cat0_4x32x3x64x64", |b| {
        b.iter(|| collate::cat0(&batches).unwrap())
    });
    let pool = MemoryPool::new(128 * 3 * 64 * 64, 4);
    g.bench_function("cat0_pooled_4x32x3x64x64", |b| {
        b.iter(|| collate::cat0_pooled(&batches, &pool, DeviceId::Gpu(0)).unwrap())
    });
    g.finish();
}

fn bench_flex_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("flex_planning");
    for (p, b_) in [(256usize, 96usize), (1024, 7), (4096, 224)] {
        g.bench_with_input(
            BenchmarkId::new("plan", format!("P{p}_b{b_}")),
            &(p, b_),
            |bench, &(p, b_)| bench.iter(|| plan_flex(p, b_, 17).unwrap()),
        );
    }
    g.finish();
}

fn bench_codec_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let encoded = codec::encode_stub(1, 2, 110_000);
    let out = 3 * 224 * 224;
    g.throughput(Throughput::Bytes(out as u64));
    g.bench_function("decode_imagenet_sample", |b| {
        b.iter(|| codec::decode_bytes(&encoded, out))
    });
    g.finish();
}

fn bench_dataloader(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataloader");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    for workers in [0usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("epoch_64x8_images", workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || {
                        DataLoader::new(
                            Arc::new(
                                SyntheticImageDataset::new(64, 32, 32, 1).with_encoded_len(4_096),
                            ),
                            DataLoaderConfig {
                                batch_size: 8,
                                num_workers: workers,
                                shuffle: false,
                                ..Default::default()
                            },
                        )
                    },
                    |loader| loader.epoch(0).count(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_ps_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_engine");
    g.bench_function("settle_64_jobs", |b| {
        b.iter_batched(
            || {
                let mut r: PsResource<usize> = PsResource::new("cpu", 16.0, Sharing::Fair);
                r.settle(0);
                for i in 0..64 {
                    r.add(0, (i + 1) as f64 * 0.001, 1.0, i);
                }
                r
            },
            |mut r| {
                let mut t = 0u64;
                while let Some(next) = r.next_completion(t) {
                    if next >= ts_sim::des::FOREVER {
                        break;
                    }
                    t = next;
                    if r.settle(t).is_empty() && r.active() == 0 {
                        break;
                    }
                    if r.active() == 0 {
                        break;
                    }
                }
                r
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Transport comparison (the new cross-process subsystem):
///
/// * announce (metadata) round-trip throughput, `inproc://` broker vs a
///   real `ipc://` Unix socket;
/// * payload delivery, pointer-passing (tiny announce + shared-memory
///   arena read) vs copying the batch bytes through the socket.
///
/// Results also land in `BENCH_transport.json` at the repo root.
fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    let announce = DataMsg::Batch(BatchAnnounce {
        seq: 42,
        epoch: 1,
        index_in_epoch: 42,
        last_in_epoch: false,
        content: AnnounceContent::Shared {
            fields: vec![TensorPayload::pack(&Tensor::zeros(
                &[128, 3, 64, 64],
                DType::U8,
                DeviceId::Cpu,
            ))],
            labels: TensorPayload::pack(&Tensor::zeros(&[128], DType::I64, DeviceId::Cpu)),
        },
    })
    .encode();

    // --- announce throughput: inproc vs ipc --------------------------------
    {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://bench-transport").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://bench-transport");
        sub.subscribe(b"");
        let wire = announce.clone();
        g.bench_function("announce_inproc", |b| {
            b.iter(|| {
                publisher
                    .send(b"batch", Multipart::single(wire.clone()))
                    .unwrap();
                std::hint::black_box(sub.recv_timeout(Duration::from_secs(5)).unwrap())
            })
        });
    }
    {
        let ctx = Context::new();
        let endpoint = format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-bench-{}.sock", std::process::id()))
                .display()
        );
        let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
        let sub = SubSocket::connect(&ctx, &endpoint);
        sub.subscribe(b"");
        let wire = announce.clone();
        g.bench_function("announce_ipc", |b| {
            b.iter(|| {
                publisher
                    .send(b"batch", Multipart::single(wire.clone()))
                    .unwrap();
                std::hint::black_box(sub.recv_timeout(Duration::from_secs(5)).unwrap())
            })
        });
    }

    // --- payload delivery: arena pointer-passing vs socket byte-copy -------
    let batch = Tensor::rand_u8(&[128, 3, 64, 64], DeviceId::Cpu, 3);
    let batch_bytes = batch.gather_bytes();
    g.throughput(Throughput::Bytes(batch_bytes.len() as u64));
    {
        let ctx = Context::new();
        let endpoint = format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-bench-ptr-{}.sock", std::process::id()))
                .display()
        );
        let arena = ts_shm::ShmArena::create(
            std::env::temp_dir().join(format!("ts-bench-{}.arena", std::process::id())),
            4,
            batch_bytes.len(),
        )
        .unwrap();
        let handle = arena.alloc(&batch_bytes).unwrap();
        let registry = SharedRegistry::new();
        registry.bind_arena(arena.clone());
        let mut payload = TensorPayload::pack(&batch);
        payload.shm = Some(handle);
        let wire = payload.encode();
        let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
        let sub = SubSocket::connect(&ctx, &endpoint);
        sub.subscribe(b"");
        g.bench_function("payload_pointer_ipc", |b| {
            b.iter(|| {
                publisher
                    .send(b"batch", Multipart::single(wire.clone()))
                    .unwrap();
                let (_, msg) = sub.recv_timeout(Duration::from_secs(5)).unwrap();
                let decoded = TensorPayload::decode(&msg.frames()[0]).unwrap();
                let view = arena.attach(decoded.shm.unwrap()).unwrap();
                // the consumer's "training step" reads every byte
                std::hint::black_box(view.iter().map(|&b| b as u64).sum::<u64>())
            })
        });
    }
    {
        let ctx = Context::new();
        let endpoint = format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-bench-cp-{}.sock", std::process::id()))
                .display()
        );
        let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
        let sub = SubSocket::connect(&ctx, &endpoint);
        sub.subscribe(b"");
        let wire = bytes::Bytes::from(batch_bytes.clone());
        g.bench_function("payload_bytecopy_ipc", |b| {
            b.iter(|| {
                publisher
                    .send(b"batch", Multipart::single(wire.clone()))
                    .unwrap();
                let (_, msg) = sub.recv_timeout(Duration::from_secs(5)).unwrap();
                std::hint::black_box(msg.frames()[0].iter().map(|&b| b as u64).sum::<u64>())
            })
        });
    }
    {
        // The v2 negotiated streamed mode: the full Streamed announce —
        // dtype, shape and length-prefixed bytes, encoded once
        // producer-side exactly as `encode_streamed` ships it — decoded
        // and rebuilt into a host tensor consumer-side. Sits between the
        // pointer and raw-bytecopy rows: it pays the byte copy plus the
        // announce codec, but needs no arena on the consumer host.
        let ctx = Context::new();
        let endpoint = format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-bench-st-{}.sock", std::process::id()))
                .display()
        );
        let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
        let sub = SubSocket::connect(&ctx, &endpoint);
        sub.subscribe(b"");
        let labels = Tensor::zeros(&[128], DType::I64, DeviceId::Cpu);
        let wire = DataMsg::Batch(BatchAnnounce {
            seq: 42,
            epoch: 1,
            index_in_epoch: 42,
            last_in_epoch: false,
            content: AnnounceContent::Streamed {
                fields: vec![StreamedTensor::from_tensor(&batch)],
                labels: StreamedTensor::from_tensor(&labels),
            },
        })
        .encode();
        g.bench_function("payload_streamed_ipc", |b| {
            b.iter(|| {
                publisher
                    .send(b"batch", Multipart::single(wire.clone()))
                    .unwrap();
                let (_, msg) = sub.recv_timeout(Duration::from_secs(5)).unwrap();
                let DataMsg::Batch(announce) = DataMsg::decode(&msg.frames()[0]).unwrap() else {
                    unreachable!()
                };
                let AnnounceContent::Streamed { fields, .. } = announce.content else {
                    unreachable!()
                };
                let rebuilt = fields[0].to_tensor(DeviceId::Cpu).unwrap();
                // the consumer's "training step" reads every byte
                std::hint::black_box(
                    rebuilt
                        .gather_bytes()
                        .iter()
                        .map(|&b| b as u64)
                        .sum::<u64>(),
                )
            })
        });
    }
    // --- cursor announcements: coalesced vs per-publish backlog ------------
    // The producer's cursor channel is latest-wins: a publish storm
    // between two housekeeping flushes collapses to ONE Cursor frame on
    // the wire. The backlog row is the naive alternative — every publish
    // broadcast as its own frame, all of which a waking consumer must
    // drain. 64 publishes per iteration in both rows.
    {
        let ctx = Context::new();
        let endpoint = format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-bench-cur-{}.sock", std::process::id()))
                .display()
        );
        let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
        let sub = SubSocket::connect(&ctx, &endpoint);
        sub.subscribe(b"");
        let cursor = |seq: u64| {
            DataMsg::Cursor {
                shard: 0,
                epoch: 1,
                seq,
                index_in_epoch: seq,
            }
            .encode()
        };
        let (tx, rx) = coalescing_cell::<u64>();
        g.bench_function("announce_coalesced_ipc", |b| {
            b.iter(|| {
                for seq in 0..64u64 {
                    std::hint::black_box(tx.offer(seq));
                }
                let latest = rx.poll().expect("storm left a cursor");
                publisher
                    .send(b"cur", Multipart::single(cursor(latest)))
                    .unwrap();
                std::hint::black_box(sub.recv_timeout(Duration::from_secs(5)).unwrap())
            })
        });
        g.bench_function("announce_backlog_ipc", |b| {
            b.iter(|| {
                for seq in 0..64u64 {
                    publisher
                        .send(b"cur", Multipart::single(cursor(seq)))
                        .unwrap();
                }
                for _ in 0..64 {
                    std::hint::black_box(sub.recv_timeout(Duration::from_secs(5)).unwrap());
                }
            })
        });
    }
    g.finish();

    // Persist the transport numbers for tracking across PRs, in the
    // shared suite schema the CI bench gate compares against the
    // committed baseline.
    ts_bench::report::BenchReport::from_measurements(
        "transport",
        batch_bytes.len() as u64,
        c.measurements(),
        "transport/",
    )
    .write(
        &std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_transport.json"),
    );
}

criterion_group!(
    micro,
    bench_payload_path,
    bench_trace_record,
    bench_wire_codec,
    bench_pubsub,
    bench_collate,
    bench_flex_planning,
    bench_codec_decode,
    bench_dataloader,
    bench_ps_engine,
    bench_transport,
);
criterion_main!(micro);
