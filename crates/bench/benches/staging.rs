//! Device-staging throughput: overlapped H2D copies vs the serial
//! copy-then-publish baseline.
//!
//! One GPU-device producer + one consumer over `inproc://`, a synthetic
//! image epoch consumed to completion with a fixed per-batch "training
//! step" on the consumer side. The H2D link is modeled at a constrained
//! bandwidth (`H2D_BANDWIDTH`) so a batch copy costs real wall time
//! comparable to the training step — the regime where copy placement
//! matters. Three rows, varying only `ProducerConfig::staging.mode`:
//!
//! * `publish/off` — the legacy path: per-batch device allocation + copy
//!   on the publish thread through `DeviceCtx::transfer`, which models
//!   the same constrained link time (the producer forwards
//!   `h2d_bandwidth` to `DeviceCtx::set_copy_bandwidth`), so all three
//!   rows pay identical per-batch copy cost and differ only in copy
//!   *placement* and allocation behavior.
//! * `publish/serial` — slab-pooled staging with the modeled copy on the
//!   publish thread: zero steady-state device allocations, but every
//!   batch pays `copy + publish + train` serially (the paper's problem
//!   case: the device copy on the critical path).
//! * `publish/overlapped` — the same copy cost on the dedicated staging
//!   stage: the copy of batch *n* runs while the consumer trains on
//!   *n − 1*, so the cycle collapses to `max(copy, train)` and the
//!   epoch finishes ~copy/train-ratio faster than serial.
//!
//! The committed `BENCH_staging.json` documents the overlap win
//! (overlapped beats both serial *and* the now-comparable off row); the
//! CI gate holds all three rows. The off row was re-baselined when it
//! gained the link-time model — before that it was an unmodeled
//! reference whose time was not comparable to the staged rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, StagingConfig, StagingMode, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_device::DeviceId;

const SAMPLES: usize = 512;
const BATCH: usize = 32;
/// Small images keep the *decode* CPU cost negligible even on a starved
/// CI runner; the copy cost is the bandwidth *model*, not the memcpy, so
/// the staging comparison is undistorted by loader throughput.
const SIDE: usize = 16; // 3×16×16 images → 24 KiB staged per batch
const ENCODED_LEN: usize = 1_024;
/// Modeled H2D bandwidth: constrained so one batch copy costs ~1 ms —
/// the same order as the training step, the regime where the copy's
/// placement (publish thread vs copy stage) decides the cycle time.
const H2D_BANDWIDTH: f64 = 24e6;
/// Per-batch consumer "training step".
const TRAIN_STEP: Duration = Duration::from_micros(1_000);

fn make_loader() -> DataLoader {
    DataLoader::new(
        Arc::new(SyntheticImageDataset::new(SAMPLES, SIDE, SIDE, 11).with_encoded_len(ENCODED_LEN)),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: 2,
            prefetch_factor: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

/// Runs one full epoch through a GPU-staging producer + consumer with a
/// fixed training step per batch; returns batches seen.
fn run_epoch(mode: StagingMode, endpoint: &str) -> u64 {
    let ctx = TsContext::with_gpus(1, 8 << 30, false);
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(endpoint)
        .epochs(1)
        .device(DeviceId::Gpu(0))
        // buffer_size 1: the strictest window, where the copy's
        // placement (publish thread vs copy stage) is fully exposed.
        .buffer_size(1)
        .staging_config(StagingConfig {
            mode,
            h2d_bandwidth: Some(H2D_BANDWIDTH),
            ..Default::default()
        })
        .poll_interval(Duration::from_micros(200))
        .first_consumer_timeout(Some(Duration::from_secs(30)))
        .spawn(make_loader())
        .expect("spawn producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .heartbeat_interval(Duration::from_millis(5))
        .connect(endpoint)
        .expect("connect consumer");
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        std::hint::black_box(batch.labels.view_bytes());
        // The training step: the ack for this batch goes out when the
        // next one is requested, so this sits inside the window cycle.
        std::thread::sleep(TRAIN_STEP);
        batches += 1;
    }
    producer.join().expect("producer join");
    batches
}

fn bench_staging(c: &mut Criterion) {
    let mut g = c.benchmark_group("staging");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    let epoch_bytes = (SAMPLES / BATCH * BATCH) as u64 * (3 * SIDE * SIDE) as u64;
    g.throughput(Throughput::Bytes(epoch_bytes));
    let mut round = 0u32;
    for (tag, mode) in [
        ("off", StagingMode::Off),
        ("serial", StagingMode::Serial),
        ("overlapped", StagingMode::Overlapped),
    ] {
        g.bench_with_input(BenchmarkId::new("publish", tag), &mode, |b, &mode| {
            b.iter(|| {
                round += 1;
                let endpoint = format!("inproc://bench-staging-{tag}-{round}");
                let batches = run_epoch(mode, &endpoint);
                assert_eq!(batches as usize, SAMPLES / BATCH);
                batches
            })
        });
    }
    g.finish();

    // Persist in the shared schema for the CI bench gate.
    let report = ts_bench::report::BenchReport::from_measurements(
        "staging",
        epoch_bytes,
        c.measurements(),
        "staging/",
    );
    let pick = |suffix: &str| {
        report
            .results
            .iter()
            .find(|r| r.bench.ends_with(suffix))
            .map(|r| r.mean_ns)
    };
    if let (Some(serial), Some(overlapped)) = (pick("/publish/serial"), pick("/publish/overlapped"))
    {
        println!(
            "overlapped H2D staging vs serial copy-then-publish: {:.2}x (serial {:.1} ms -> overlapped {:.1} ms)",
            serial / overlapped,
            serial / 1e6,
            overlapped / 1e6
        );
    }
    report.write(
        &std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_staging.json"),
    );
}

criterion_group!(staging, bench_staging);
criterion_main!(staging);
