//! One benchmark group per table/figure of the paper's evaluation.
//!
//! Each group prints the regenerated paper-style rows once (stderr), then
//! benchmarks representative underlying runs so regressions in simulator
//! or protocol performance show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use ts_baselines::{coordl_strategy, joader_strategy, nonshared_strategy, tensorsocket_strategy};
use ts_sim::GpuSharing;

fn print_report_once(id: &str) {
    if let Some(report) = ts_experiments::run_by_id(id) {
        eprintln!("\n{}", report.render());
    }
}

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_fig1_catalog(c: &mut Criterion) {
    print_report_once("fig1");
    let mut g = c.benchmark_group("fig1_catalog");
    g.bench_function("heatmap_all_providers", |b| {
        b.iter(|| {
            for p in [
                ts_cloud_provider::Aws,
                ts_cloud_provider::Azure,
                ts_cloud_provider::Gcp,
            ] {
                std::hint::black_box(ts_cloud::figure1_matrix(p));
            }
        })
    });
    g.finish();
}

use ts_cloud::Provider as ts_cloud_provider;

fn bench_fig8_image_classification(c: &mut Criterion) {
    print_report_once("fig8");
    let mut g = c.benchmark_group("fig8_image_classification");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("mobilenet_s_nonshared_4way", |b| {
        b.iter(|| ts_experiments::fig8::run_config("MobileNet S", nonshared_strategy()))
    });
    g.bench_function("mobilenet_s_shared_4way", |b| {
        b.iter(|| ts_experiments::fig8::run_config("MobileNet S", tensorsocket_strategy(0)))
    });
    g.finish();
}

fn bench_table3_data_movement(c: &mut Criterion) {
    print_report_once("table3");
    let mut g = c.benchmark_group("table3_data_movement");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("mobilenet_l_shared_traffic", |b| {
        b.iter(|| ts_experiments::fig8::run_config("MobileNet L", tensorsocket_strategy(0)))
    });
    g.finish();
}

fn bench_fig9_collocation(c: &mut Criterion) {
    print_report_once("fig9");
    let mut g = c.benchmark_group("fig9_collocation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for degree in [1usize, 4] {
        g.bench_function(format!("mobilenet_s_shared_{degree}way"), |b| {
            b.iter(|| {
                ts_experiments::fig9::run_config("MobileNet S", degree, tensorsocket_strategy(0))
            })
        });
    }
    g.finish();
}

fn bench_fig10_flexible(c: &mut Criterion) {
    print_report_once("fig10");
    let mut g = c.benchmark_group("fig10_flexible");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("default_mode", |b| {
        b.iter(|| ts_experiments::fig10::run_config(0.05))
    });
    g.bench_function("flexible_mode", |b| {
        b.iter(|| ts_experiments::fig10::run_config(0.35))
    });
    g.finish();
}

fn bench_fig11_audio(c: &mut Criterion) {
    print_report_once("fig11");
    let mut g = c.benchmark_group("fig11_audio");
    g.sample_size(10);
    for vcpus in [8u32, 32] {
        g.bench_function(format!("clmr_shared_mps_{vcpus}vcpu"), |b| {
            b.iter(|| {
                ts_experiments::fig11::run_config(vcpus, GpuSharing::Mps, tensorsocket_strategy(0))
            })
        });
    }
    g.finish();
}

fn bench_fig12_dalle(c: &mut Criterion) {
    print_report_once("fig12");
    let mut g = c.benchmark_group("fig12_dalle");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("dalle_4way_shared_clip", |b| {
        b.iter(|| ts_experiments::fig12::run_config(4, true))
    });
    g.bench_function("dalle_4way_private_clip", |b| {
        b.iter(|| ts_experiments::fig12::run_config(4, false))
    });
    g.finish();
}

fn bench_fig13_mixed(c: &mut Criterion) {
    print_report_once("fig13");
    let mut g = c.benchmark_group("fig13_mixed");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    g.bench_function("regnet_pair_g5_2xl_shared", |b| {
        b.iter(|| ts_experiments::fig13::run_config(8, tensorsocket_strategy(0)))
    });
    g.finish();
}

fn bench_table4_llm(c: &mut Criterion) {
    print_report_once("table4");
    let mut g = c.benchmark_group("table4_llm");
    g.sample_size(10);
    g.bench_function("qwen_shared", |b| {
        b.iter(|| ts_experiments::table4::run_config(true))
    });
    g.finish();
}

fn bench_fig14_coordl(c: &mut Criterion) {
    print_report_once("fig14");
    let mut g = c.benchmark_group("fig14_coordl");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("resnet18_4way_tensorsocket", |b| {
        b.iter(|| ts_experiments::fig14::run_config(4, tensorsocket_strategy(0)))
    });
    g.bench_function("resnet18_4way_coordl", |b| {
        b.iter(|| ts_experiments::fig14::run_config(4, coordl_strategy()))
    });
    g.finish();
}

fn bench_fig15_joader(c: &mut Criterion) {
    print_report_once("fig15");
    let mut g = c.benchmark_group("fig15_joader");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("mobilenet_8way_tensorsocket", |b| {
        b.iter(|| ts_experiments::fig15::run_config(8, tensorsocket_strategy(0)))
    });
    g.bench_function("mobilenet_8way_joader", |b| {
        b.iter(|| ts_experiments::fig15::run_config(8, joader_strategy()))
    });
    g.bench_function("mobilenet_8way_baseline", |b| {
        b.iter(|| ts_experiments::fig15::run_config(8, nonshared_strategy()))
    });
    g.finish();
}

criterion_group! {
    name = artifacts;
    config = {
        let mut c = Criterion::default().configure_from_args();
        configure(&mut c);
        c
    };
    targets =
        bench_fig1_catalog,
        bench_fig8_image_classification,
        bench_table3_data_movement,
        bench_fig9_collocation,
        bench_fig10_flexible,
        bench_fig11_audio,
        bench_fig12_dalle,
        bench_fig13_mixed,
        bench_table4_llm,
        bench_fig14_coordl,
        bench_fig15_joader,
}
criterion_main!(artifacts);
