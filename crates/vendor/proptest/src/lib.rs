//! Minimal, offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`any`],
//! integer/float range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, simple `".{m,n}"` string patterns and
//! [`Strategy::prop_map`]. Cases are generated from a deterministic
//! per-test seed (no shrinking); a failing case prints its seed so it can
//! be replayed by rerunning the test.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Number of cases each property runs.
pub const CASES: u64 = 64;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias ~1/8 of draws to the boundaries, like proptest's
                // edge-case emphasis.
                match rng.gen_range(0u32..16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => rng.gen_range(self.start..self.end),
                }
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty => $draw:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.gen_range(0u32..16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    _ => rng.$draw() as $t,
                }
            }
        }
    )*};
}

arbitrary_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// String patterns like `".{0,40}"` act as strategies producing ASCII
/// strings whose length is drawn from the `{min,max}` quantifier; any other
/// pattern falls back to lengths 0..=16.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_len_quantifier(self).unwrap_or((0, 16));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| rng.gen_range(b' '..=b'~') as char)
            .collect()
    }
}

fn parse_len_quantifier(pat: &str) -> Option<(usize, usize)> {
    let open = pat.find('{')?;
    let close = pat.rfind('}')?;
    let (lo, hi) = pat.get(open + 1..close)?.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::RngCore;

        /// Strategy producing arbitrary booleans.
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u32() & 1 == 1
            }
        }

        /// Any boolean.
        pub const ANY: BoolAny = BoolAny;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for vectors with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max_exclusive: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.min..self.max_exclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector of values from `element` with a length in `lens`.
        pub fn vec<S: Strategy>(element: S, lens: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(lens.start < lens.end, "empty length range");
            VecStrategy {
                element,
                min: lens.start,
                max_exclusive: lens.end,
            }
        }
    }
}

/// Runs `body` for [`CASES`] deterministic cases. Used by [`proptest!`];
/// not part of the public proptest API.
pub fn run_cases<F: FnMut(&mut TestRng)>(test_name: &str, mut body: F) {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    let base = h.finish();
    for case in 0..CASES {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest case {case}/{CASES} of `{test_name}` failed (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in prop::collection::vec(0u8..5, 0..8), b in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = b;
        }

        #[test]
        fn tuples_and_map(pair in (1u64..4, 0.0f64..1.0).prop_map(|(a, f)| (a * 2, f)) ) {
            prop_assert!(pair.0 >= 2 && pair.0 <= 6);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn string_pattern(s in ".{0,40}") {
            prop_assert!(s.len() <= 40, "len {}", s.len());
        }
    }

    #[test]
    fn any_hits_boundaries_eventually() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let mut saw_zero = false;
        for _ in 0..1000 {
            if <u64 as crate::Arbitrary>::arbitrary(&mut rng) == 0 {
                saw_zero = true;
            }
        }
        assert!(saw_zero);
    }

    use rand::SeedableRng;
}
