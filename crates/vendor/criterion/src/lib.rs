//! Minimal, offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Benchmarks compile and run with the same source as the real crate for
//! the subset used here (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, throughput annotations).
//! Measurement is a simple calibrated loop reporting mean wall-clock time
//! per iteration — adequate for relative comparisons, with none of
//! criterion's statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier of the form `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Conversion into a printable benchmark id (mirrors criterion's
/// `IntoBenchmarkId` so call sites can pass `&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One timed result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` of the benchmark.
    pub id: String,
    /// Mean nanoseconds per iteration (over all rounds).
    pub mean_ns: f64,
    /// Iterations measured (total, over all rounds).
    pub iters: u64,
    /// Per-round mean nanoseconds: the measurement loop is split into up
    /// to [`SAMPLE_ROUNDS`] timed rounds, so downstream consumers (the
    /// bench-gate's normalized min-of-k test) can use order statistics
    /// instead of one global mean. One entry per round actually run.
    pub sample_means_ns: Vec<f64>,
    /// Group throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// The minimum per-round mean — the min-of-k statistic. Falls back to
    /// the global mean when no rounds were recorded.
    pub fn min_ns(&self) -> f64 {
        self.sample_means_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(self.mean_ns)
    }
}

/// Rounds the measurement loop is split into (the `k` of min-of-k).
pub const SAMPLE_ROUNDS: u64 = 5;

/// The benchmark driver.
pub struct Criterion {
    target_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Keep bench binaries quick; accuracy needs are relative only.
            target_time: Duration::from_millis(200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// CLI-argument configuration; accepted and ignored (API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample-count hint; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; shortens or lengthens the calibrated loop.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // The real crate spends `t` per benchmark; cap it so full paper
        // suites stay runnable in CI.
        self.criterion.target_time = t.min(Duration::from_secs(1));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            target_time: self.criterion.target_time,
            mean_ns: 0.0,
            iters: 0,
            sample_means_ns: Vec::new(),
        };
        f(&mut b);
        let m = Measurement {
            id: full,
            mean_ns: b.mean_ns,
            iters: b.iters,
            sample_means_ns: b.sample_means_ns,
            throughput: self.throughput,
        };
        report(&m);
        self.criterion.results.push(m);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (drop also suffices; kept for API parity).
    pub fn finish(self) {}
}

fn report(m: &Measurement) {
    let per = format_ns(m.mean_ns);
    match m.throughput {
        Some(Throughput::Bytes(bytes)) if m.mean_ns > 0.0 => {
            let gib_s = bytes as f64 / m.mean_ns * 1e9 / (1u64 << 30) as f64;
            println!("{:<56} {:>12}/iter {:>10.3} GiB/s", m.id, per, gib_s);
        }
        Some(Throughput::Elements(n)) if m.mean_ns > 0.0 => {
            let elem_s = n as f64 / m.mean_ns * 1e9;
            println!("{:<56} {:>12}/iter {:>10.0} elem/s", m.id, per, elem_s);
        }
        _ => println!("{:<56} {:>12}/iter", m.id, per),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The per-benchmark timing handle.
pub struct Bencher {
    target_time: Duration,
    mean_ns: f64,
    iters: u64,
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` in a calibrated loop split into up to
    /// [`SAMPLE_ROUNDS`] timed rounds. The global mean feeds the legacy
    /// consumers; the per-round means give downstream gates an order
    /// statistic (min-of-k) that is robust to one-sided noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost.
        let start = Instant::now();
        std::hint::black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;
        let rounds = SAMPLE_ROUNDS.min(iters);
        let per_round = iters / rounds;
        let mut total = Duration::ZERO;
        let mut measured = 0u64;
        self.sample_means_ns.clear();
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..per_round {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / per_round as f64);
            total += elapsed;
            measured += per_round;
        }
        self.mean_ns = total.as_nanos() as f64 / measured as f64;
        self.iters = measured;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement), round-split like [`Bencher::iter`].
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        let rounds = SAMPLE_ROUNDS.min(iters);
        let per_round = iters / rounds;
        let mut total = Duration::ZERO;
        let mut measured = 0u64;
        self.sample_means_ns.clear();
        for _ in 0..rounds {
            let inputs: Vec<I> = (0..per_round).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / per_round as f64);
            total += elapsed;
            measured += per_round;
        }
        self.mean_ns = total.as_nanos() as f64 / measured as f64;
        self.iters = measured;
    }
}

/// Bundles benchmark functions into a runnable group. Supports both the
/// positional form and the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter_batched(|| vec![0u8; x], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.mean_ns >= 0.0));
    }

    #[test]
    fn records_sample_rounds_and_min() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("spin", |b| {
            b.iter(|| {
                std::hint::black_box((0..100).sum::<u64>());
            })
        });
        g.finish();
        let m = &c.measurements()[0];
        assert!(!m.sample_means_ns.is_empty());
        assert!(m.sample_means_ns.len() as u64 <= SAMPLE_ROUNDS);
        // min of rounds <= global mean, and min_ns() returns it.
        assert!(m.min_ns() <= m.mean_ns);
        assert!(m.min_ns() > 0.0);
    }
}
