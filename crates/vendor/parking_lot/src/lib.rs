//! Minimal, offline stand-in for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns a guard directly). Poisoned locks are recovered
//! transparently — parking_lot has no poisoning, so neither does this shim.

#![warn(missing_docs)]

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader–writer lock whose methods never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
