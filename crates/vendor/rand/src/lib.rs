//! Minimal, offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides the subset the workspace uses — `StdRng::seed_from_u64`,
//! `thread_rng`, `Rng::gen`/`gen_range`, and `SliceRandom::shuffle` — with
//! the same call-site API as rand 0.8. The generator is xoshiro256++
//! seeded through SplitMix64: deterministic for a given seed, which is all
//! the deterministic pipelines here rely on (they never assume rand's exact
//! stream).

#![warn(missing_docs)]

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// Rejection-sampled uniform draw in `[0, span)`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Fills a byte slice with random data (rand's `Fill`, byte-slice
    /// subset).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded per-call generator, see [`super::thread_rng`].
    #[derive(Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let pid = std::process::id() as u64;
            let tid = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
            Self {
                inner: StdRng::seed_from_u64(now ^ (pid << 32) ^ tid),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A fresh, entropy-seeded generator (not actually thread-cached in this
/// vendored version; every call returns an independent generator).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// In-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u64(rng, i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn thread_rng_produces_nonzero() {
        assert_ne!(super::thread_rng().next_u64() | 1, 0);
    }
}
