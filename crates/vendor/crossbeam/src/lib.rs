//! Minimal, offline stand-in for [`crossbeam`](https://docs.rs/crossbeam).
//!
//! Only [`channel`] is provided: a bounded MPMC channel built on
//! `Mutex` + `Condvar` with crossbeam's exact disconnect semantics — when
//! every `Sender` is dropped receivers drain the queue and then observe
//! `Disconnected`; when every `Receiver` is dropped senders fail fast.

#![warn(missing_docs)]

/// Bounded MPMC channels with crossbeam-channel's API surface.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued right now.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel holding at most `cap` messages.
    ///
    /// `cap` of zero is rounded up to one (this shim does not implement
    /// rendezvous channels; nothing in the workspace uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX / 2)
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the queue is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < self.inner.cap {
                    st.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self.inner.not_full.wait(st).expect("channel lock");
            }
        }

        /// Sends without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() >= self.inner.cap {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel lock").queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they can observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(m) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(m);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Receives, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(m) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(m);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            if let Some(m) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(m);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel lock").queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders blocked on a full queue so they can fail.
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        assert!(tx.send(4).is_err());
    }

    #[test]
    fn receiver_sees_disconnect_after_drain() {
        let (tx, rx) = bounded(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn blocking_send_resumes() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }
}
