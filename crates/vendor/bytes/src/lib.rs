//! Minimal, offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements exactly the subset this workspace uses: [`Bytes`] (cheap
//! reference-counted byte slices), [`BytesMut`] (an append buffer), and the
//! [`Buf`]/[`BufMut`] cursor traits with the little-endian accessors the
//! wire codecs rely on. API-compatible with the real crate for those calls,
//! so swapping the real dependency back in is a one-line manifest change.

#![warn(missing_docs)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Internally an `Arc<[u8]>` plus a window; `clone` is O(1) and never
/// copies the underlying buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice. (The vendored version copies once; semantics
    /// are identical.)
    pub fn from_static(b: &'static [u8]) -> Self {
        Self::copy_from_slice(b)
    }

    /// Copies a slice into a new reference-counted buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(b);
        Self {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same buffer (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Self {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::copy_from_slice(b)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing the
/// slice in place exactly like the real crate.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// The current readable chunk.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut v = [0u8; 2];
        v.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(v)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut v = [0u8; 4];
        v.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(v)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut v = [0u8; 8];
        v.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(v)
    }

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Implemented for [`BytesMut`]
/// and `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn buf_cursors() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(70_000);
        m.put_u64_le(1 << 40);
        let frozen = m.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 300);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.remaining(), 0);
    }
}
