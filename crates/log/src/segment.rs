//! One append-only log segment: an mmap'd file holding a fixed-width
//! index block and a CRC-framed data region.
//!
//! ```text
//! ┌────────────────┬──────────────────────┬─────────────────────────┐
//! │ header (4 KiB) │ index (cap × 40 B)   │ data region             │
//! └────────────────┴──────────────────────┴─────────────────────────┘
//! ```
//!
//! Records are keyed by a dense global sequence number: record `i` of a
//! segment with base sequence `b` holds seq `b + i`, so lookups are pure
//! arithmetic — no search. The write protocol is data bytes first, then
//! the index entry, then the committed count in the header; recovery
//! trusts only records `0..committed` *and* re-validates each against
//! its index geometry and CRC, truncating the tail at the first record
//! that fails. A torn write therefore costs at most the records after
//! the last complete one, never the segment.

use crate::mmap::SharedMapping;
use crate::{crc32, LogError, Result};
use std::path::{Path, PathBuf};

/// `b"TSLOG001"` little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"TSLOG001");
const VERSION: u32 = 1;
/// Header page size; index block starts here.
pub(crate) const HEADER_BYTES: usize = 4096;
/// Fixed-width index entry size.
pub(crate) const ENTRY_BYTES: usize = 40;

// Header field offsets.
const H_MAGIC: usize = 0;
const H_VERSION: usize = 8;
const H_SHARD: usize = 12;
const H_BASE_SEQ: usize = 16;
const H_INDEX_CAP: usize = 24;
const H_DATA_CAP: usize = 32;
const H_COMMITTED: usize = 40;
const H_SEALED: usize = 48;

/// XOR'd into the stored per-entry sequence number. Without it an
/// all-zero index entry (a torn write, or never-written bytes) for seq 0
/// would validate as a legitimate empty record — epoch 0, offset 0,
/// len 0, and CRC-32 of zero bytes is 0. The salt makes "never written"
/// distinguishable from "committed" for every field pattern a fresh or
/// zero-torn file can contain.
const SEQ_SALT: u64 = u64::from_le_bytes(*b"TSLOGSEQ");

// Index entry field offsets.
const E_EPOCH: usize = 0;
const E_INDEX_IN_EPOCH: usize = 8;
const E_OFFSET: usize = 16;
const E_LEN: usize = 24;
const E_CRC: usize = 28;
const E_SEQ: usize = 32;

/// Metadata of one committed record, read from the index block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Global sequence number.
    pub seq: u64,
    /// Epoch the batch belongs to.
    pub epoch: u64,
    /// Batch index within its epoch.
    pub index_in_epoch: u64,
    /// Encoded frame length in bytes.
    pub len: u32,
}

/// One mmap'd segment file.
pub struct Segment {
    map: SharedMapping,
    path: PathBuf,
    base_seq: u64,
    index_cap: u64,
    data_cap: u64,
    committed: u64,
    /// Data-region bytes used by records `0..committed`.
    data_used: u64,
    sealed: bool,
}

impl Segment {
    /// The file name a segment with this base sequence uses.
    pub fn file_name(base_seq: u64) -> String {
        format!("seg-{base_seq:020}.tslog")
    }

    /// Parses a segment file name back to its base sequence.
    pub fn parse_file_name(name: &str) -> Option<u64> {
        name.strip_prefix("seg-")?
            .strip_suffix(".tslog")?
            .parse()
            .ok()
    }

    fn file_size(index_cap: u64, data_cap: u64) -> usize {
        HEADER_BYTES + index_cap as usize * ENTRY_BYTES + data_cap as usize
    }

    /// Creates a fresh segment pre-sized for `index_cap` records and
    /// `data_cap` payload bytes.
    pub fn create(
        dir: &Path,
        shard: u32,
        base_seq: u64,
        index_cap: u64,
        data_cap: u64,
    ) -> Result<Segment> {
        if index_cap == 0 || data_cap == 0 {
            return Err(LogError::Config("segment capacity must be non-zero".into()));
        }
        let path = dir.join(Self::file_name(base_seq));
        let map = SharedMapping::create(&path, Self::file_size(index_cap, data_cap))
            .map_err(|e| LogError::Io(format!("create {}: {e}", path.display())))?;
        let mut seg = Segment {
            map,
            path,
            base_seq,
            index_cap,
            data_cap,
            committed: 0,
            data_used: 0,
            sealed: false,
        };
        seg.put_u64(H_MAGIC, MAGIC);
        seg.put_u32(H_VERSION, VERSION);
        seg.put_u32(H_SHARD, shard);
        seg.put_u64(H_BASE_SEQ, base_seq);
        seg.put_u64(H_INDEX_CAP, index_cap);
        seg.put_u64(H_DATA_CAP, data_cap);
        seg.put_u64(H_COMMITTED, 0);
        seg.put_u32(H_SEALED, 0);
        Ok(seg)
    }

    /// Opens an existing segment and recovers it: the committed count is
    /// clamped to what the file can hold, every committed record is
    /// re-validated (index geometry, stored seq, CRC over the data
    /// bytes), and the tail is truncated at the first record that fails —
    /// the segment reopens at its last complete record.
    pub fn open(path: &Path) -> Result<Segment> {
        let map = SharedMapping::open(path)
            .map_err(|e| LogError::Io(format!("open {}: {e}", path.display())))?;
        if map.len() < HEADER_BYTES {
            return Err(LogError::Corrupt(format!(
                "{}: shorter than a segment header",
                path.display()
            )));
        }
        let mut seg = Segment {
            map,
            path: path.to_path_buf(),
            base_seq: 0,
            index_cap: 0,
            data_cap: 0,
            committed: 0,
            data_used: 0,
            sealed: false,
        };
        if seg.get_u64(H_MAGIC) != MAGIC {
            return Err(LogError::Corrupt(format!(
                "{}: bad magic",
                seg.path.display()
            )));
        }
        if seg.get_u32(H_VERSION) != VERSION {
            return Err(LogError::Corrupt(format!(
                "{}: unsupported segment version {}",
                seg.path.display(),
                seg.get_u32(H_VERSION)
            )));
        }
        seg.base_seq = seg.get_u64(H_BASE_SEQ);
        seg.index_cap = seg.get_u64(H_INDEX_CAP);
        seg.data_cap = seg.get_u64(H_DATA_CAP);
        seg.sealed = seg.get_u32(H_SEALED) != 0;
        if Self::file_size(seg.index_cap, seg.data_cap) != seg.map.len() {
            return Err(LogError::Corrupt(format!(
                "{}: header geometry does not match file size",
                seg.path.display()
            )));
        }
        // Recovery: trust nothing past the first record that does not
        // check out. A torn tail (data without index, index without
        // count, or a half-written record under any of them) truncates
        // here, and appending resumes after the last complete record.
        let claimed = seg.get_u64(H_COMMITTED).min(seg.index_cap);
        let mut good = 0u64;
        let mut data_used = 0u64;
        for i in 0..claimed {
            let (epoch, index_in_epoch, offset, len, crc, stored_seq) = seg.read_entry(i);
            let _ = (epoch, index_in_epoch);
            let end = offset.checked_add(len as u64);
            let in_bounds = offset == data_used && end.is_some_and(|e| e <= seg.data_cap);
            if !in_bounds || stored_seq != seg.base_seq + i {
                break;
            }
            let bytes = seg.data_slice(offset, len as usize);
            if crc32(bytes) != crc {
                break;
            }
            good = i + 1;
            data_used = offset + len as u64;
        }
        seg.committed = good;
        seg.data_used = data_used;
        seg.put_u64(H_COMMITTED, good);
        Ok(seg)
    }

    /// First sequence number this segment holds.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// One past the last committed sequence number.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.committed
    }

    /// Committed records.
    pub fn len(&self) -> u64 {
        self.committed
    }

    /// True when no record has been committed.
    pub fn is_empty(&self) -> bool {
        self.committed == 0
    }

    /// True once [`Segment::seal`] ran (rotation): no further appends.
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a `len`-byte record still fits.
    pub fn has_room(&self, len: usize) -> bool {
        !self.sealed
            && self.committed < self.index_cap
            && self.data_used + len as u64 <= self.data_cap
    }

    /// Marks the segment full; rotation opens a successor.
    pub fn seal(&mut self) {
        self.sealed = true;
        self.put_u32(H_SEALED, 1);
    }

    /// Appends one record. The caller guarantees [`Segment::has_room`];
    /// the assigned sequence number is returned.
    pub fn append(&mut self, epoch: u64, index_in_epoch: u64, payload: &[u8]) -> Result<u64> {
        if !self.has_room(payload.len()) {
            return Err(LogError::Config("append into a full segment".into()));
        }
        let i = self.committed;
        let seq = self.base_seq + i;
        let offset = self.data_used;
        // Write order is the recovery contract: payload bytes, then the
        // index entry, then the committed count. Whatever prefix of that
        // survives a crash, recovery lands on a complete record. NOTE
        // this ordering exists only in memory — after a process crash
        // (`kill -9`) the kernel still holds every store, but on host
        // power loss page writeback may persist the committed count
        // before the data it covers; callers who need power-fail safety
        // must interpose [`Segment::sync`] (recovery's CRC check catches
        // most — not all — such reorderings after the fact).
        self.data_slice_mut(offset, payload.len())
            .copy_from_slice(payload);
        self.write_entry(
            i,
            epoch,
            index_in_epoch,
            offset,
            payload.len() as u32,
            crc32(payload),
            seq,
        );
        self.committed = i + 1;
        self.data_used = offset + payload.len() as u64;
        self.put_u64(H_COMMITTED, self.committed);
        Ok(seq)
    }

    /// Reads record `seq`'s payload, verifying its CRC.
    pub fn read(&self, seq: u64) -> Option<Vec<u8>> {
        let i = seq.checked_sub(self.base_seq)?;
        if i >= self.committed {
            return None;
        }
        let (_, _, offset, len, crc, _) = self.read_entry(i);
        let bytes = self.data_slice(offset, len as usize);
        if crc32(bytes) != crc {
            return None;
        }
        Some(bytes.to_vec())
    }

    /// Reads record `seq`'s index metadata (no payload copy).
    pub fn meta(&self, seq: u64) -> Option<RecordMeta> {
        let i = seq.checked_sub(self.base_seq)?;
        if i >= self.committed {
            return None;
        }
        let (epoch, index_in_epoch, _, len, _, _) = self.read_entry(i);
        Some(RecordMeta {
            seq,
            epoch,
            index_in_epoch,
            len,
        })
    }

    /// Payload bytes committed so far.
    pub fn data_used(&self) -> u64 {
        self.data_used
    }

    /// Synchronously flushes the segment's dirty pages to disk
    /// (`msync(MS_SYNC)`): the opt-in barrier that upgrades the
    /// process-crash durability of the commit protocol to power-fail
    /// durability for everything committed so far.
    pub fn sync(&self) -> Result<()> {
        self.map
            .sync()
            .map_err(|e| LogError::Io(format!("msync {}: {e}", self.path.display())))
    }

    // -- raw accessors ----------------------------------------------------

    fn entry_base(&self, i: u64) -> usize {
        HEADER_BYTES + i as usize * ENTRY_BYTES
    }

    #[allow(clippy::type_complexity)]
    fn read_entry(&self, i: u64) -> (u64, u64, u64, u32, u32, u64) {
        let b = self.entry_base(i);
        (
            self.get_u64(b + E_EPOCH),
            self.get_u64(b + E_INDEX_IN_EPOCH),
            self.get_u64(b + E_OFFSET),
            self.get_u32(b + E_LEN),
            self.get_u32(b + E_CRC),
            self.get_u64(b + E_SEQ) ^ SEQ_SALT,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn write_entry(
        &mut self,
        i: u64,
        epoch: u64,
        index_in_epoch: u64,
        offset: u64,
        len: u32,
        crc: u32,
        seq: u64,
    ) {
        let b = self.entry_base(i);
        self.put_u64(b + E_EPOCH, epoch);
        self.put_u64(b + E_INDEX_IN_EPOCH, index_in_epoch);
        self.put_u64(b + E_OFFSET, offset);
        self.put_u32(b + E_LEN, len);
        self.put_u32(b + E_CRC, crc);
        self.put_u64(b + E_SEQ, seq ^ SEQ_SALT);
    }

    fn data_base(&self) -> usize {
        HEADER_BYTES + self.index_cap as usize * ENTRY_BYTES
    }

    fn data_slice(&self, offset: u64, len: usize) -> &[u8] {
        let start = self.data_base() + offset as usize;
        // Safety: offset/len were bounds-checked against data_cap by the
        // caller (append) or recovery, and the mapping covers the region.
        unsafe { std::slice::from_raw_parts(self.map.ptr().add(start), len) }
    }

    fn data_slice_mut(&mut self, offset: u64, len: usize) -> &mut [u8] {
        let start = self.data_base() + offset as usize;
        // Safety: as data_slice, plus single-writer (the owning BatchLog
        // serializes appends).
        unsafe { std::slice::from_raw_parts_mut(self.map.ptr().add(start), len) }
    }

    fn get_u64(&self, offset: usize) -> u64 {
        debug_assert!(offset + 8 <= self.map.len());
        // Safety: in-bounds unaligned read of plain bytes.
        unsafe { (self.map.ptr().add(offset) as *const u64).read_unaligned() }
    }

    fn put_u64(&mut self, offset: usize, v: u64) {
        debug_assert!(offset + 8 <= self.map.len());
        // Safety: in-bounds unaligned write; single writer.
        unsafe { (self.map.ptr().add(offset) as *mut u64).write_unaligned(v) }
    }

    fn get_u32(&self, offset: usize) -> u32 {
        debug_assert!(offset + 4 <= self.map.len());
        // Safety: in-bounds unaligned read of plain bytes.
        unsafe { (self.map.ptr().add(offset) as *const u32).read_unaligned() }
    }

    fn put_u32(&mut self, offset: usize, v: u32) {
        debug_assert!(offset + 4 <= self.map.len());
        // Safety: in-bounds unaligned write; single writer.
        unsafe { (self.map.ptr().add(offset) as *mut u32).write_unaligned(v) }
    }
}
