//! Persisted consumer-group cursors.
//!
//! A cursor records, per `(group, shard)`, the next sequence number the
//! group has *not yet acknowledged* — the resume point after a crash.
//! Each cursor lives in its own small file under `<log dir>/cursors/`
//! and is rewritten via tmp-file + rename, so a `kill -9` at any instant
//! leaves either the old or the new value on disk, never a torn one.
//!
//! Writes come in two flavours: [`CursorStore::advance`] persists
//! immediately (used for registration, which is rare), while
//! [`CursorStore::advance_mem`] only updates memory and marks the entry
//! dirty for a later [`CursorStore::flush`] — the per-ack path, where a
//! caller batching acks at a bounded cadence trades two syscalls per ack
//! for "a crash re-delivers at most one flush interval of acked
//! batches", which cursor semantics already tolerate (advances below the
//! stored value are ignored as regressions).

use crate::{LogError, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// XOR'd into the stored value as a cheap integrity check.
const CURSOR_SALT: u64 = u64::from_le_bytes(*b"TSCURS01");

/// Durable store of per-`(group, shard)` resume cursors.
pub struct CursorStore {
    dir: PathBuf,
    cursors: BTreeMap<(String, u32), u64>,
    /// Entries advanced in memory but not yet written to disk.
    dirty: BTreeSet<(String, u32)>,
}

impl CursorStore {
    /// Opens (creating if needed) the cursor directory under `log_dir`
    /// and loads every stored cursor. Files that fail validation are
    /// ignored — a damaged cursor degrades to "no cursor", which replays
    /// from the oldest retained record rather than losing data.
    pub fn open(log_dir: &Path) -> Result<CursorStore> {
        let dir = log_dir.join("cursors");
        fs::create_dir_all(&dir)
            .map_err(|e| LogError::Io(format!("create {}: {e}", dir.display())))?;
        let mut cursors = BTreeMap::new();
        let entries =
            fs::read_dir(&dir).map_err(|e| LogError::Io(format!("read {}: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((group, shard)) = Self::parse_file_name(name) else {
                continue;
            };
            let Ok(bytes) = fs::read(entry.path()) else {
                continue;
            };
            if bytes.len() != 16 {
                continue;
            }
            let value = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            let check = u64::from_le_bytes(bytes[8..].try_into().unwrap());
            if value ^ CURSOR_SALT != check {
                continue;
            }
            cursors.insert((group, shard), value);
        }
        Ok(CursorStore {
            dir,
            cursors,
            dirty: BTreeSet::new(),
        })
    }

    /// The stored cursor for `(group, shard)`: the next sequence number
    /// the group still needs.
    pub fn load(&self, group: &str, shard: u32) -> Option<u64> {
        self.cursors.get(&(group.to_string(), shard)).copied()
    }

    /// Advances `(group, shard)` to `next_seq` and writes it through to
    /// disk. Regressions are ignored — acks can arrive out of order but a
    /// cursor only moves forward. Returns whether the cursor moved.
    pub fn advance(&mut self, group: &str, shard: u32, next_seq: u64) -> Result<bool> {
        if !self.advance_mem(group, shard, next_seq) {
            return Ok(false);
        }
        let key = (group.to_string(), shard);
        self.write_through(group, shard, next_seq)?;
        self.dirty.remove(&key);
        Ok(true)
    }

    /// Advances `(group, shard)` in memory only, marking it dirty for the
    /// next [`CursorStore::flush`]. Regressions are ignored, as in
    /// [`CursorStore::advance`]. Returns whether the cursor moved.
    pub fn advance_mem(&mut self, group: &str, shard: u32, next_seq: u64) -> bool {
        let key = (group.to_string(), shard);
        if self.cursors.get(&key).is_some_and(|&cur| next_seq <= cur) {
            return false;
        }
        self.cursors.insert(key.clone(), next_seq);
        self.dirty.insert(key);
        true
    }

    /// Writes every dirty cursor through to disk (tmp + rename each).
    /// Entries that fail to write stay dirty for the next flush; the
    /// first error is returned after attempting the rest. Returns how
    /// many cursors were persisted.
    pub fn flush(&mut self) -> Result<usize> {
        let dirty: Vec<(String, u32)> = self.dirty.iter().cloned().collect();
        let mut flushed = 0;
        let mut first_err = None;
        for key in dirty {
            let value = self.cursors[&key];
            match self.write_through(&key.0, key.1, value) {
                Ok(()) => {
                    self.dirty.remove(&key);
                    flushed += 1;
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(flushed),
            Some(e) => Err(e),
        }
    }

    /// Whether any advance is still waiting for a [`CursorStore::flush`].
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    fn write_through(&self, group: &str, shard: u32, next_seq: u64) -> Result<()> {
        let path = self.dir.join(Self::file_name(group, shard));
        let tmp = self
            .dir
            .join(format!(".{}.tmp", Self::file_name(group, shard)));
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&next_seq.to_le_bytes());
        bytes[8..].copy_from_slice(&(next_seq ^ CURSOR_SALT).to_le_bytes());
        fs::write(&tmp, bytes)
            .map_err(|e| LogError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| LogError::Io(format!("rename {}: {e}", path.display())))?;
        Ok(())
    }

    /// Registers a group without moving its cursor (so retention starts
    /// protecting its range immediately, before the first ack). A group
    /// that already has a cursor is left untouched.
    pub fn register(&mut self, group: &str, shard: u32, floor: u64) -> Result<()> {
        let key = (group.to_string(), shard);
        if self.cursors.contains_key(&key) {
            return Ok(());
        }
        self.advance(group, shard, floor).map(|_| ())
    }

    /// The lowest cursor across all registered groups for `shard` —
    /// retention must keep every record at or above this.
    pub fn min_cursor(&self, shard: u32) -> Option<u64> {
        self.cursors
            .iter()
            .filter(|((_, s), _)| *s == shard)
            .map(|(_, &v)| v)
            .min()
    }

    /// Registered group names (all shards, deduplicated, sorted).
    pub fn groups(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cursors.keys().map(|(g, _)| g.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    fn file_name(group: &str, shard: u32) -> String {
        format!("{}.s{shard}.cursor", encode_group(group))
    }

    fn parse_file_name(name: &str) -> Option<(String, u32)> {
        let stem = name.strip_suffix(".cursor")?;
        let dot = stem.rfind(".s")?;
        let shard: u32 = stem[dot + 2..].parse().ok()?;
        let group = decode_group(&stem[..dot])?;
        Some((group, shard))
    }
}

/// Escapes a group name into a path-safe file stem: `[A-Za-z0-9_-]`
/// bytes pass through, everything else becomes `%XX`.
fn encode_group(group: &str) -> String {
    let mut out = String::with_capacity(group.len());
    for &b in group.as_bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

fn decode_group(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return None;
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_names_round_trip_through_file_names() {
        for group in ["trial-7", "hp search/лаб", "a.b.c", "%", ""] {
            let name = CursorStore::file_name(group, 3);
            let (back, shard) = CursorStore::parse_file_name(&name).unwrap();
            assert_eq!(back, group);
            assert_eq!(shard, 3);
        }
    }
}
