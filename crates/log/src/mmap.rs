//! A tiny `MAP_SHARED` file mapping for log segments.
//!
//! The build environment has no `memmap2`/`libc` crates available, so the
//! two mmap calls this crate needs are declared directly against the
//! platform C library (which every Rust binary on Linux links anyway) —
//! the same approach `ts-shm` takes for its arena. The mapping is
//! deliberately minimal: segments are single-writer, and all read-side
//! consistency comes from the segment's committed-count protocol, not
//! from the mapping.

use std::fs::OpenOptions;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-write `MAP_SHARED` mapping of a whole file.
pub struct SharedMapping {
    ptr: *mut u8,
    len: usize,
}

// Safety: the mapping is plain shared memory; segments are written by a
// single spiller thread and readers validate every record against its
// CRC before trusting the bytes.
unsafe impl Send for SharedMapping {}
unsafe impl Sync for SharedMapping {}

impl SharedMapping {
    /// Creates/truncates `path` to `len` bytes and maps it read-write.
    #[cfg(unix)]
    pub fn create(path: &Path, len: usize) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        Self::map(&file, len)
    }

    /// Maps an existing file read-write over its current length.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
        }
        Self::map(&file, len)
    }

    #[cfg(unix)]
    fn map(file: &std::fs::File, len: usize) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        // Safety: standard mmap of an owned fd; length is non-zero and the
        // fd is valid for the duration of the call.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// Creating shared mappings is only supported on unix in this
    /// reproduction.
    #[cfg(not(unix))]
    pub fn create(_path: &Path, _len: usize) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "ts-log requires a unix platform",
        ))
    }

    /// See [`SharedMapping::create`].
    #[cfg(not(unix))]
    pub fn open(_path: &Path) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "ts-log requires a unix platform",
        ))
    }

    /// Synchronously flushes the whole mapping to its backing file
    /// (`msync(MS_SYNC)`). The in-memory write ordering the segment
    /// protocol relies on says nothing about writeback order on host
    /// power loss — this is the opt-in barrier for power-fail safety.
    #[cfg(unix)]
    pub fn sync(&self) -> io::Result<()> {
        // Safety: ptr/len come from a successful mmap and the mapping is
        // alive for &self's lifetime.
        let rc = unsafe {
            sys::msync(
                self.ptr as *mut std::os::raw::c_void,
                self.len,
                sys::MS_SYNC,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// See [`SharedMapping::sync`].
    #[cfg(not(unix))]
    pub fn sync(&self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "ts-log requires a unix platform",
        ))
    }

    /// Base pointer of the mapping.
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a valid segment).
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for SharedMapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        // Safety: ptr/len come from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}
