//! # ts-log — durable epoch batch log
//!
//! An mmap'd, offset-addressed log of published batches, giving the
//! TensorSocket producer a durable replay source so late or restarted
//! consumers can catch up at disk speed instead of pinning live arena
//! slots (the rubberband path).
//!
//! ## Layout
//!
//! Each shard logs into its own directory of append-only segment files:
//!
//! ```text
//! <dir>/shard-<N>/seg-<base_seq>.tslog    record payloads + index
//! <dir>/cursors/<group>.s<N>.cursor       per-group resume cursors
//! ```
//!
//! A segment is a fixed-geometry mmap'd file — 4 KiB header, fixed-width
//! index block, data region — holding a dense range of sequence numbers
//! starting at its `base_seq`. Records are CRC-framed; the commit
//! protocol (data, then index entry, then committed count) means
//! reopening after a crash truncates a torn tail back to the last
//! complete record. Rotation seals a full segment and opens a successor
//! at the next sequence number; retention deletes the oldest sealed
//! segments, but never one that a registered consumer-group cursor still
//! needs.
//!
//! ## Durability
//!
//! The commit protocol's write ordering lives in CPU stores, not on the
//! platter: the log is durable against **process crash** (`kill -9`,
//! panic, OOM-kill — the kernel retains every completed store and
//! writes it back), but on **host power loss** page writeback may
//! persist the committed count before the data/index it covers, and
//! recovery would then trust a record whose payload bytes never hit
//! disk (the per-record CRC catches nearly all such torn states, but
//! only probabilistically). Deployments that need power-fail safety
//! should call [`BatchLog::sync`] (or [`Segment::sync`]) at a
//! checkpoint cadence — an explicit `msync(MS_SYNC)` barrier — and
//! treat everything synced as power-fail durable.
//!
//! ## Cursors
//!
//! A [`CursorStore`] persists, per `(group, shard)`, the next sequence
//! number the group has not yet acknowledged. Every persisted write is
//! atomic (tmp + rename), so `kill -9` at any moment leaves a
//! consistent resume point. Advances come write-through
//! ([`CursorStore::advance`]) or coalesced ([`CursorStore::advance_mem`]
//! then [`CursorStore::flush`]); a caller flushing at a bounded cadence
//! accepts that a crash re-delivers at most one flush interval of acked
//! batches — cursor regressions are ignored, so re-delivery is safe.
//!
//! The payload bytes stored here are the producer's encoded
//! streamed-batch frames, written and read verbatim — replay sends the
//! very bytes a live streamed subscriber would have seen, which is what
//! makes log-replay-then-live-splice bit-identical.

mod cursor;
mod mmap;
mod segment;

pub use cursor::CursorStore;
pub use segment::{RecordMeta, Segment};

use std::fmt;
use std::fs;
use std::path::PathBuf;

/// Errors surfaced by the log.
#[derive(Debug)]
pub enum LogError {
    /// Filesystem or mapping failure.
    Io(String),
    /// A file failed structural validation.
    Corrupt(String),
    /// Invalid configuration or API misuse.
    Config(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(m) => write!(f, "log io error: {m}"),
            LogError::Corrupt(m) => write!(f, "log corrupt: {m}"),
            LogError::Config(m) => write!(f, "log config error: {m}"),
        }
    }
}

impl std::error::Error for LogError {}

/// Result alias for log operations.
pub type Result<T> = std::result::Result<T, LogError>;

/// Configuration for a [`BatchLog`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Root directory; shard subdirectories and the cursor store live
    /// under it.
    pub dir: PathBuf,
    /// Records per segment before rotation.
    pub segment_records: u64,
    /// Data-region bytes per segment before rotation.
    pub segment_bytes: u64,
    /// Sealed segments to retain beyond the active one. Retention never
    /// deletes a segment a registered group cursor still needs,
    /// whatever this says.
    pub retain_segments: usize,
}

impl LogConfig {
    /// A log rooted at `dir` with default segment geometry (1024 records
    /// or 64 MiB per segment, 8 sealed segments retained).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            segment_records: 1024,
            segment_bytes: 64 << 20,
            retain_segments: 8,
        }
    }
}

/// The append/read half of the log for one shard: a chain of segments
/// plus rotation and retention.
///
/// Single-writer: the producer's spiller thread appends; replay reads go
/// through the same handle (callers serialize with a mutex). Sequence
/// numbers are assigned by the caller's publish order and must be dense
/// and monotonic — [`BatchLog::append`] enforces this.
pub struct BatchLog {
    cfg: LogConfig,
    shard_dir: PathBuf,
    shard: u32,
    /// Oldest → newest; the last is the active (unsealed) segment.
    segments: Vec<Segment>,
    appended_bytes: u64,
}

impl BatchLog {
    /// Opens shard `shard` of the log rooted at `cfg.dir`, creating the
    /// directory tree on first use and recovering any existing segments
    /// (each truncates its own torn tail; segments left empty by
    /// recovery are deleted).
    pub fn open(cfg: &LogConfig, shard: u32) -> Result<BatchLog> {
        if cfg.segment_records == 0 || cfg.segment_bytes == 0 {
            return Err(LogError::Config("segment geometry must be non-zero".into()));
        }
        let shard_dir = cfg.dir.join(format!("shard-{shard}"));
        fs::create_dir_all(&shard_dir)
            .map_err(|e| LogError::Io(format!("create {}: {e}", shard_dir.display())))?;
        let mut bases: Vec<u64> = fs::read_dir(&shard_dir)
            .map_err(|e| LogError::Io(format!("read {}: {e}", shard_dir.display())))?
            .flatten()
            .filter_map(|e| Segment::parse_file_name(e.file_name().to_str()?))
            .collect();
        bases.sort_unstable();
        let mut segments = Vec::with_capacity(bases.len());
        for base in bases {
            let seg = Segment::open(&shard_dir.join(Segment::file_name(base)))?;
            segments.push(seg);
        }
        // Recovery may leave trailing empty segments (rotation created the
        // file, crash hit before the first commit): drop them so the next
        // append re-creates the tail at the right sequence number.
        while segments.last().is_some_and(|s| s.is_empty()) {
            let seg = segments.pop().unwrap();
            let _ = fs::remove_file(seg.path());
        }
        // Anything but the last segment is by definition no longer
        // written; mark sealed so retention can reason uniformly.
        let n = segments.len();
        for seg in segments.iter_mut().take(n.saturating_sub(1)) {
            if !seg.sealed() {
                seg.seal();
            }
        }
        Ok(BatchLog {
            cfg: cfg.clone(),
            shard_dir,
            shard,
            segments,
            appended_bytes: 0,
        })
    }

    /// The shard this log handle serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Appends the record for `seq` (an encoded streamed-batch frame).
    /// `seq` must be exactly [`BatchLog::next_seq`] when the log is
    /// non-empty; the first append fixes the log's origin.
    pub fn append(
        &mut self,
        seq: u64,
        epoch: u64,
        index_in_epoch: u64,
        payload: &[u8],
    ) -> Result<()> {
        if let Some(next) = self.next_seq() {
            if seq != next {
                return Err(LogError::Config(format!(
                    "non-contiguous append: got seq {seq}, expected {next}"
                )));
            }
        }
        if self
            .segments
            .last()
            .is_none_or(|s| !s.has_room(payload.len()))
        {
            self.rotate(seq, payload.len())?;
        }
        let seg = self.segments.last_mut().unwrap();
        seg.append(epoch, index_in_epoch, payload)?;
        self.appended_bytes += payload.len() as u64;
        Ok(())
    }

    fn rotate(&mut self, base_seq: u64, min_data: usize) -> Result<()> {
        if let Some(last) = self.segments.last_mut() {
            last.seal();
        }
        // A payload larger than the configured segment size gets a
        // segment grown to fit rather than an error.
        let data_cap = self.cfg.segment_bytes.max(min_data as u64);
        let seg = Segment::create(
            &self.shard_dir,
            self.shard,
            base_seq,
            self.cfg.segment_records,
            data_cap,
        )?;
        self.segments.push(seg);
        Ok(())
    }

    /// Reads the payload stored for `seq`, if retained.
    pub fn read(&self, seq: u64) -> Option<Vec<u8>> {
        self.find(seq)?.read(seq)
    }

    /// Reads the index metadata stored for `seq`, if retained.
    pub fn meta(&self, seq: u64) -> Option<RecordMeta> {
        self.find(seq)?.meta(seq)
    }

    fn find(&self, seq: u64) -> Option<&Segment> {
        let i = self
            .segments
            .partition_point(|s| s.base_seq() <= seq)
            .checked_sub(1)?;
        Some(&self.segments[i])
    }

    /// The inclusive range of retained sequence numbers, oldest to
    /// newest, or `None` while the log is empty.
    pub fn retained_range(&self) -> Option<(u64, u64)> {
        let first = self.segments.first()?.base_seq();
        let last = self.segments.last()?.next_seq().checked_sub(1)?;
        if last < first {
            return None;
        }
        Some((first, last))
    }

    /// One past the newest logged sequence number.
    pub fn next_seq(&self) -> Option<u64> {
        self.segments.last().map(|s| s.next_seq())
    }

    /// Total payload bytes appended through this handle (not persisted;
    /// resets on reopen).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Flushes every segment's dirty pages to disk (`msync(MS_SYNC)`) —
    /// the opt-in power-fail barrier; see the crate-level *Durability*
    /// section. Not called on the append path: it is a full-mapping
    /// synchronous flush, priced for an explicit checkpoint cadence.
    pub fn sync(&self) -> Result<()> {
        for seg in &self.segments {
            seg.sync()?;
        }
        Ok(())
    }

    /// Deletes the oldest sealed segments past the configured retention
    /// budget. A segment survives regardless of the budget while
    /// `cursor_floor` (the minimum registered group cursor) still points
    /// at or below its newest record; the active segment is never
    /// deleted. Returns how many segments were removed.
    pub fn apply_retention(&mut self, cursor_floor: Option<u64>) -> usize {
        let mut removed = 0;
        while self.segments.len() > self.cfg.retain_segments + 1 {
            let oldest = &self.segments[0];
            if !oldest.sealed() {
                break;
            }
            let end = oldest.next_seq(); // first seq the *next* segment holds
            if cursor_floor.is_some_and(|floor| floor < end) {
                break;
            }
            let seg = self.segments.remove(0);
            let _ = fs::remove_file(seg.path());
            removed += 1;
        }
        removed
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the frame check used by
/// segment records.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-wise table keeps the const table tiny; throughput is fine
    // for the spiller (one pass per append, off the publish hot path).
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1db7_1064,
        0x3b6e_20c8,
        0x26d9_30ac,
        0x76dc_4190,
        0x6b6b_51f4,
        0x4db2_6158,
        0x5005_713c,
        0xedb8_8320,
        0xf00f_9344,
        0xd6d6_a3e8,
        0xcb61_b38c,
        0x9b64_c2b0,
        0x86d3_d2d4,
        0xa00a_e278,
        0xbdbd_f21c,
    ];
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0x0f) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (b as u32 >> 4)) & 0x0f) as usize] ^ (crc >> 4);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ts-log-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payload(seq: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (seq as u8).wrapping_add(i as u8))
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values from the IEEE 802.3 polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn append_read_round_trip_across_rotation() {
        let dir = tmp_dir("roundtrip");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_records = 4;
        cfg.segment_bytes = 256;
        let mut log = BatchLog::open(&cfg, 0).unwrap();
        for seq in 10..30u64 {
            log.append(seq, seq / 8, seq % 8, &payload(seq, 48))
                .unwrap();
        }
        assert!(log.segment_count() > 1, "expected rotation");
        assert_eq!(log.retained_range(), Some((10, 29)));
        for seq in 10..30u64 {
            assert_eq!(log.read(seq).unwrap(), payload(seq, 48));
            let meta = log.meta(seq).unwrap();
            assert_eq!((meta.epoch, meta.index_in_epoch), (seq / 8, seq % 8));
        }
        assert_eq!(log.read(9), None);
        assert_eq!(log.read(30), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_preserves_contents_and_continues_sequence() {
        let dir = tmp_dir("reopen");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_records = 4;
        cfg.segment_bytes = 1024;
        {
            let mut log = BatchLog::open(&cfg, 2).unwrap();
            for seq in 0..6u64 {
                log.append(seq, 0, seq, &payload(seq, 32)).unwrap();
            }
        }
        let mut log = BatchLog::open(&cfg, 2).unwrap();
        assert_eq!(log.retained_range(), Some((0, 5)));
        assert_eq!(log.next_seq(), Some(6));
        for seq in 0..6u64 {
            assert_eq!(log.read(seq).unwrap(), payload(seq, 32));
        }
        assert!(log.append(9, 1, 0, b"gap").is_err(), "gap must be rejected");
        log.append(6, 1, 0, &payload(6, 32)).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_last_complete_record() {
        let dir = tmp_dir("torn");
        let cfg = LogConfig::new(&dir);
        {
            let mut log = BatchLog::open(&cfg, 0).unwrap();
            for seq in 0..5u64 {
                log.append(seq, 0, seq, &payload(seq, 64)).unwrap();
            }
        }
        // Corrupt one payload byte of record 3 on disk: recovery must keep
        // 0..=2 and drop 3..=4 (the CRC no longer matches).
        let seg_path = dir.join("shard-0").join(Segment::file_name(0));
        let mut bytes = fs::read(&seg_path).unwrap();
        let data_base = segment::HEADER_BYTES + 1024 * segment::ENTRY_BYTES;
        bytes[data_base + 3 * 64 + 10] ^= 0xff;
        fs::write(&seg_path, &bytes).unwrap();
        let log = BatchLog::open(&cfg, 0).unwrap();
        assert_eq!(log.retained_range(), Some((0, 2)));
        assert_eq!(log.read(2).unwrap(), payload(2, 64));
        assert_eq!(log.read(3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_respects_cursor_floor() {
        let dir = tmp_dir("retention");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_records = 2;
        cfg.segment_bytes = 1024;
        cfg.retain_segments = 1;
        let mut log = BatchLog::open(&cfg, 0).unwrap();
        for seq in 0..10u64 {
            log.append(seq, 0, seq, &payload(seq, 16)).unwrap();
        }
        // 5 segments of 2 records. A cursor at 1 protects everything.
        assert_eq!(log.apply_retention(Some(1)), 0);
        assert_eq!(log.retained_range(), Some((0, 9)));
        // A cursor at 5 lets segments [0,1] and [2,3] go.
        assert_eq!(log.apply_retention(Some(5)), 2);
        assert_eq!(log.retained_range(), Some((4, 9)));
        // No registered cursors: trim to the retention budget.
        assert_eq!(log.apply_retention(None), 1);
        assert_eq!(log.retained_range(), Some((6, 9)));
        // Active segment survives even with an absurd floor.
        assert!(log.apply_retention(Some(u64::MAX)) <= 1);
        assert!(log.retained_range().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_gets_grown_segment() {
        let dir = tmp_dir("grown");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_bytes = 64;
        let mut log = BatchLog::open(&cfg, 0).unwrap();
        let big = payload(0, 1000);
        log.append(0, 0, 0, &big).unwrap();
        assert_eq!(log.read(0).unwrap(), big);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn coalesced_cursor_advances_persist_on_flush() {
        let dir = tmp_dir("cursors-coalesced");
        {
            let mut store = CursorStore::open(&dir).unwrap();
            assert!(store.advance_mem("g", 0, 4));
            assert!(store.advance_mem("g", 0, 9));
            assert!(!store.advance_mem("g", 0, 7), "no regression");
            assert!(store.has_dirty());
            // Memory sees the coalesced value before any flush...
            assert_eq!(store.load("g", 0), Some(9));
            // ...but a reopen without a flush sees nothing.
            assert_eq!(CursorStore::open(&dir).unwrap().load("g", 0), None);
            assert_eq!(store.flush().unwrap(), 1, "one file per dirty key");
            assert!(!store.has_dirty());
            assert_eq!(store.flush().unwrap(), 0, "flush is idempotent");
        }
        let store = CursorStore::open(&dir).unwrap();
        assert_eq!(store.load("g", 0), Some(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_flushes_and_preserves_contents() {
        // Smoke for the opt-in power-fail barrier: msync must succeed on
        // a live multi-segment log and change nothing readers see.
        let dir = tmp_dir("sync");
        let mut cfg = LogConfig::new(&dir);
        cfg.segment_records = 4;
        let mut log = BatchLog::open(&cfg, 0).unwrap();
        for seq in 0..10u64 {
            log.append(seq, 0, seq, &payload(seq, 32)).unwrap();
        }
        log.sync().unwrap();
        for seq in 0..10u64 {
            assert_eq!(log.read(seq).unwrap(), payload(seq, 32));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_store_round_trips_and_floors() {
        let dir = tmp_dir("cursors");
        {
            let mut store = CursorStore::open(&dir).unwrap();
            assert!(store.advance("trial-a", 0, 7).unwrap());
            assert!(store.advance("trial-b", 0, 3).unwrap());
            assert!(!store.advance("trial-a", 0, 5).unwrap(), "no regression");
            store.register("trial-c", 1, 0).unwrap();
        }
        let store = CursorStore::open(&dir).unwrap();
        assert_eq!(store.load("trial-a", 0), Some(7));
        assert_eq!(store.load("trial-b", 0), Some(3));
        assert_eq!(store.min_cursor(0), Some(3));
        assert_eq!(store.min_cursor(1), Some(0));
        assert_eq!(store.min_cursor(9), None);
        assert_eq!(store.groups(), vec!["trial-a", "trial-b", "trial-c"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
