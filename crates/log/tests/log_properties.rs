//! Property tests of the durable batch log: round-trip fidelity across
//! arbitrary append sequences and segment geometries, torn-tail recovery
//! to a complete-record prefix, and retention never deleting a record a
//! registered group cursor still needs.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use ts_log::{BatchLog, CursorStore, LogConfig};

fn temp_cfg(tag: &str, segment_records: u64, segment_bytes: u64) -> LogConfig {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ts-log-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = LogConfig::new(dir);
    cfg.segment_records = segment_records;
    cfg.segment_bytes = segment_bytes;
    cfg
}

/// Deterministic, never-zero content for record `seq` — zeroing any byte
/// of it is guaranteed to change the bytes (torn-tail simulation).
fn content(seq: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq.wrapping_mul(131).wrapping_add(i as u64) % 254 + 1) as u8)
        .collect()
}

proptest! {
    /// Append → read and append → reopen → read both return exactly the
    /// written bytes and metadata, across segment rotations.
    #[test]
    fn round_trip_across_reopen(
        seg_records in 1u64..6,
        base in 0u64..1000,
        lens in prop::collection::vec(1usize..96, 1..40)
    ) {
        let cfg = temp_cfg("roundtrip", seg_records, 128);
        {
            let mut log = BatchLog::open(&cfg, 0).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                let seq = base + i as u64;
                log.append(seq, seq / 7, seq % 7, &content(seq, len)).unwrap();
            }
            for (i, &len) in lens.iter().enumerate() {
                let seq = base + i as u64;
                prop_assert_eq!(log.read(seq).unwrap(), content(seq, len));
            }
        }
        let log = BatchLog::open(&cfg, 0).unwrap();
        let last = base + lens.len() as u64 - 1;
        prop_assert_eq!(log.retained_range(), Some((base, last)));
        for (i, &len) in lens.iter().enumerate() {
            let seq = base + i as u64;
            prop_assert_eq!(log.read(seq).unwrap(), content(seq, len));
            let meta = log.meta(seq).unwrap();
            prop_assert_eq!(meta.epoch, seq / 7);
            prop_assert_eq!(meta.index_in_epoch, seq % 7);
            prop_assert_eq!(meta.len as usize, len);
        }
        prop_assert_eq!(log.read(base.wrapping_sub(1)), None);
        prop_assert_eq!(log.read(last + 1), None);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    /// Zeroing the file from an arbitrary offset onward (a torn write)
    /// still reopens: recovery lands on a prefix of complete records and
    /// every surviving record reads back its original bytes.
    #[test]
    fn torn_tail_recovers_to_complete_prefix(
        lens in prop::collection::vec(1usize..64, 2..20),
        cut_frac in 0u32..1000
    ) {
        let cfg = temp_cfg("torn", 1 << 20, 1 << 20);
        let total = lens.len() as u64;
        {
            let mut log = BatchLog::open(&cfg, 0).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                log.append(i as u64, 0, i as u64, &content(i as u64, len)).unwrap();
            }
        }
        let seg_path = std::fs::read_dir(cfg.dir.join("shard-0"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg_path).unwrap();
        // Tear somewhere in the back half of the header-onward region so
        // the file still parses as a segment but loses an arbitrary tail.
        let cut = 64 + (bytes.len() - 64) * cut_frac as usize / 1000;
        for b in &mut bytes[cut..] {
            *b = 0;
        }
        std::fs::write(&seg_path, &bytes).unwrap();
        match BatchLog::open(&cfg, 0) {
            Ok(log) => {
                let recovered = log.next_seq().unwrap_or(0);
                prop_assert!(recovered <= total);
                for seq in 0..recovered {
                    prop_assert_eq!(
                        log.read(seq).unwrap(),
                        content(seq, lens[seq as usize]),
                        "surviving record must be byte-identical"
                    );
                }
                for seq in recovered..total {
                    prop_assert_eq!(log.read(seq), None);
                }
            }
            Err(_) => {
                // Tearing inside the header itself may invalidate the whole
                // segment; losing it entirely is the documented worst case.
                prop_assert!(cut < 4096, "only a header tear may reject the file");
            }
        }
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    /// Retention with a registered cursor floor never deletes a record the
    /// cursor still needs, whatever the retention budget says.
    #[test]
    fn retention_never_outruns_cursors(
        seg_records in 1u64..4,
        n in 4u64..40,
        retain in 0usize..3,
        cursors in prop::collection::vec(0u64..40, 1..4)
    ) {
        let mut cfg = temp_cfg("retention", seg_records, 4096);
        cfg.retain_segments = retain;
        let mut log = BatchLog::open(&cfg, 0).unwrap();
        for seq in 0..n {
            log.append(seq, 0, seq, &content(seq, 24)).unwrap();
        }
        let mut store = CursorStore::open(&cfg.dir).unwrap();
        for (g, &c) in cursors.iter().enumerate() {
            store.advance(&format!("group-{g}"), 0, c.min(n)).unwrap();
        }
        let floor = store.min_cursor(0);
        log.apply_retention(floor);
        let f = floor.unwrap().min(n);
        // Every record at or above the floor must still read back; the
        // newest record survives unconditionally (active segment).
        for seq in f..n {
            prop_assert_eq!(log.read(seq).unwrap(), content(seq, 24));
        }
        let (min, max) = log.retained_range().unwrap();
        prop_assert!(min <= f, "retention deleted past the cursor floor");
        prop_assert_eq!(max, n - 1);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
