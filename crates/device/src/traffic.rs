//! Per-link traffic accounting.
//!
//! Tables 3 and 4 of the paper report *average* MB/s over a training run for
//! disk, PCIe (per GPU) and NVLink (per GPU). The [`TrafficBook`] counts
//! bytes per channel; average rates are derived by dividing by the observed
//! duration, exactly like `iostat`/`dcgm` averages.

use crate::topology::LinkKind;
use crate::DeviceId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A traffic channel: which pipe carried the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// Storage → host reads.
    Disk,
    /// Host ↔ GPU over PCIe, attributed to the GPU endpoint.
    Pcie(u8),
    /// GPU ↔ GPU over NVLink, attributed to the *receiving* GPU, matching
    /// how the paper reports per-GPU NVLink traffic.
    NvLink(u8),
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Channel::Disk => write!(f, "disk"),
            Channel::Pcie(g) => write!(f, "pcie[gpu{g}]"),
            Channel::NvLink(g) => write!(f, "nvlink[gpu{g}]"),
        }
    }
}

/// Byte counters per [`Channel`]. Cloning shares the book.
#[derive(Debug, Clone, Default)]
pub struct TrafficBook {
    inner: Arc<Mutex<BTreeMap<Channel, u64>>>,
}

impl TrafficBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` to a channel.
    pub fn record(&self, ch: Channel, bytes: u64) {
        *self.inner.lock().entry(ch).or_insert(0) += bytes;
    }

    /// Records a transfer hop, attributing bytes to the proper channel.
    ///
    /// PCIe hops are attributed to the GPU endpoint; NVLink hops to the
    /// receiving GPU.
    pub fn record_hop(&self, from: DeviceId, to: DeviceId, kind: LinkKind, bytes: u64) {
        let ch = match kind {
            LinkKind::Pcie => {
                let gpu = to
                    .gpu_index()
                    .or_else(|| from.gpu_index())
                    .expect("PCIe hop must touch a GPU");
                Channel::Pcie(gpu)
            }
            LinkKind::NvLink => {
                let gpu = to.gpu_index().expect("NVLink hop must end at a GPU");
                Channel::NvLink(gpu)
            }
        };
        self.record(ch, bytes);
    }

    /// Total bytes seen on a channel.
    pub fn bytes(&self, ch: Channel) -> u64 {
        self.inner.lock().get(&ch).copied().unwrap_or(0)
    }

    /// Average rate in bytes/second for a channel over `duration_ns`.
    pub fn rate_bps(&self, ch: Channel, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.bytes(ch) as f64 / (duration_ns as f64 / 1e9)
    }

    /// Snapshot of all channels and byte totals.
    pub fn snapshot(&self) -> Vec<(Channel, u64)> {
        self.inner.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Clears every counter.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_channels() {
        let t = TrafficBook::new();
        t.record(Channel::Disk, 100);
        t.record(Channel::Disk, 50);
        t.record(Channel::Pcie(0), 10);
        assert_eq!(t.bytes(Channel::Disk), 150);
        assert_eq!(t.bytes(Channel::Pcie(0)), 10);
        assert_eq!(t.bytes(Channel::Pcie(1)), 0);
    }

    #[test]
    fn rate_is_bytes_over_seconds() {
        let t = TrafficBook::new();
        t.record(Channel::NvLink(2), 2_000_000);
        // 2 MB over 2 seconds = 1 MB/s
        assert_eq!(t.rate_bps(Channel::NvLink(2), 2_000_000_000), 1.0e6);
        assert_eq!(t.rate_bps(Channel::NvLink(2), 0), 0.0);
    }

    #[test]
    fn hop_attribution() {
        let t = TrafficBook::new();
        // host → gpu0 over PCIe
        t.record_hop(DeviceId::Cpu, DeviceId::Gpu(0), LinkKind::Pcie, 7);
        // gpu0 → host over PCIe (still attributed to gpu0)
        t.record_hop(DeviceId::Gpu(0), DeviceId::Cpu, LinkKind::Pcie, 3);
        // gpu0 → gpu2 over NVLink (attributed to receiver gpu2)
        t.record_hop(DeviceId::Gpu(0), DeviceId::Gpu(2), LinkKind::NvLink, 11);
        assert_eq!(t.bytes(Channel::Pcie(0)), 10);
        assert_eq!(t.bytes(Channel::NvLink(2)), 11);
        assert_eq!(t.bytes(Channel::NvLink(0)), 0);
    }

    #[test]
    fn snapshot_and_reset() {
        let t = TrafficBook::new();
        t.record(Channel::Disk, 1);
        t.record(Channel::Pcie(1), 2);
        assert_eq!(t.snapshot().len(), 2);
        t.reset();
        assert!(t.snapshot().is_empty());
    }
}
