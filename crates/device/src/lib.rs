#![warn(missing_docs)]

//! Simulated device topology for the TensorSocket reproduction.
//!
//! The paper's hardware (Table 2) spans an H100 server, a 4×A100 NVLink
//! server, and AWS `g5` instances with a single A10G. This crate models the
//! parts of that hardware the evaluation observes:
//!
//! * [`DeviceId`]/[`DeviceKind`] — host CPU and GPUs as placement targets,
//! * [`GpuSpec`] — per-GPU VRAM capacity and a relative compute throughput,
//! * [`Topology`] — which devices exist and which links (PCIe, NVLink)
//!   connect them, including path resolution for GPU↔GPU transfers,
//! * [`MemoryBook`] — VRAM allocation accounting with peak tracking
//!   (`nvidia-smi` in the paper),
//! * [`TrafficBook`] — per-link byte counters (`dcgm`/`iostat` in the paper).
//!
//! Data never actually moves between physical devices here — tensors always
//! live in host RAM — but every allocation and transfer is *accounted* as it
//! would be on the real machine, which is what Tables 3 and 4 report.

pub mod memory;
pub mod servers;
pub mod topology;
pub mod traffic;

pub use memory::{MemoryBook, OutOfMemory};
pub use servers::{a100_server, g5_instance, h100_server, ServerSpec};
pub use topology::{Link, LinkKind, Topology, TransferPath};
pub use traffic::TrafficBook;

/// Identifies a device within one node.
///
/// `Cpu` is the host (one logical device regardless of core count);
/// `Gpu(i)` is the i-th accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceId {
    /// The host CPU / system memory.
    Cpu,
    /// GPU with the given index.
    Gpu(u8),
}

impl DeviceId {
    /// True for GPU devices.
    pub fn is_gpu(&self) -> bool {
        matches!(self, DeviceId::Gpu(_))
    }

    /// GPU index, if this is a GPU.
    pub fn gpu_index(&self) -> Option<u8> {
        match self {
            DeviceId::Gpu(i) => Some(*i),
            DeviceId::Cpu => None,
        }
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceId::Cpu => write!(f, "cpu"),
            DeviceId::Gpu(i) => write!(f, "cuda:{i}"),
        }
    }
}

/// The broad class of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU.
    Cpu,
    /// Accelerator.
    Gpu,
}

/// Static description of a GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-40GB"`.
    pub name: &'static str,
    /// VRAM capacity in bytes.
    pub vram_bytes: u64,
    /// Relative streaming-multiprocessor throughput; 1.0 = A100 baseline.
    /// Model GPU-time costs are expressed per A100 and scaled by this.
    pub relative_throughput: f64,
    /// Whether the part has NVLink connectivity.
    pub has_nvlink: bool,
}

/// Catalog of GPU models used in the paper's evaluation.
pub mod gpus {
    use super::GpuSpec;

    /// NVIDIA A100 40 GB (the 4-GPU on-prem server).
    pub const A100_40GB: GpuSpec = GpuSpec {
        name: "A100-40GB",
        vram_bytes: 40_000_000_000,
        relative_throughput: 1.0,
        has_nvlink: true,
    };

    /// NVIDIA H100 80 GB (the single-GPU on-prem server).
    pub const H100_80GB: GpuSpec = GpuSpec {
        name: "H100-80GB",
        vram_bytes: 80_000_000_000,
        relative_throughput: 2.0,
        has_nvlink: true,
    };

    /// NVIDIA A10G 24 GB (AWS g5 instances).
    pub const A10G_24GB: GpuSpec = GpuSpec {
        name: "A10G-24GB",
        vram_bytes: 24_000_000_000,
        relative_throughput: 0.4,
        has_nvlink: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId::Cpu.to_string(), "cpu");
        assert_eq!(DeviceId::Gpu(2).to_string(), "cuda:2");
    }

    #[test]
    fn device_id_helpers() {
        assert!(DeviceId::Gpu(0).is_gpu());
        assert!(!DeviceId::Cpu.is_gpu());
        assert_eq!(DeviceId::Gpu(3).gpu_index(), Some(3));
        assert_eq!(DeviceId::Cpu.gpu_index(), None);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn gpu_catalog_sane() {
        assert!(gpus::H100_80GB.relative_throughput > gpus::A100_40GB.relative_throughput);
        assert!(gpus::A100_40GB.relative_throughput > gpus::A10G_24GB.relative_throughput);
        assert!(!gpus::A10G_24GB.has_nvlink);
    }
}
