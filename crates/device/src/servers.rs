//! Predefined server configurations matching Table 2 of the paper.

use crate::topology::Topology;
use crate::{gpus, GpuSpec};

/// A node configuration: CPU core count, GPUs and their topology, plus
/// storage characteristics used by the simulator's disk model.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Human-readable name as used in Table 2.
    pub name: &'static str,
    /// Number of (v)CPUs available to data loading and training.
    pub vcpus: u32,
    /// One spec per GPU (homogeneous in all paper configurations).
    pub gpu: GpuSpec,
    /// Number of GPUs.
    pub gpu_count: u8,
    /// Sequential read bandwidth of local storage in bytes/second.
    pub disk_read_bps: f64,
    /// On-demand hourly price in USD (cloud instances only).
    pub hourly_usd: Option<f64>,
}

impl ServerSpec {
    /// Builds the link topology for this server.
    pub fn topology(&self) -> Topology {
        Topology::new(self.gpu_count, self.gpu.has_nvlink && self.gpu_count > 1)
    }
}

/// The H100 server: 24 CPUs, one H100 80 GB (Table 2 row 1).
pub fn h100_server() -> ServerSpec {
    ServerSpec {
        name: "H100 Server",
        vcpus: 24,
        gpu: gpus::H100_80GB,
        gpu_count: 1,
        disk_read_bps: 3.5e9, // local NVMe
        hourly_usd: None,
    }
}

/// The A100 server limited to 48 cores as in the paper (Table 2 row 2):
/// 48 usable CPUs, 4× A100 40 GB with NVLink.
pub fn a100_server() -> ServerSpec {
    ServerSpec {
        name: "A100 Server (48 cores)",
        vcpus: 48,
        gpu: gpus::A100_40GB,
        gpu_count: 4,
        disk_read_bps: 3.5e9,
        hourly_usd: None,
    }
}

/// AWS g5 instances (Table 2 rows 3–5): one A10G 24 GB and 8/16/32 vCPUs.
///
/// Panics for vCPU counts the paper does not use.
pub fn g5_instance(vcpus: u32) -> ServerSpec {
    let (name, hourly) = match vcpus {
        8 => ("AWS g5.2xlarge", 1.212),
        16 => ("AWS g5.4xlarge", 1.624),
        32 => ("AWS g5.8xlarge", 2.448),
        other => panic!("no g5 instance with {other} vCPUs in the paper's Table 2"),
    };
    ServerSpec {
        name,
        vcpus,
        gpu: gpus::A10G_24GB,
        gpu_count: 1,
        disk_read_bps: 1.25e9, // gp3-backed EBS / instance store class
        hourly_usd: Some(hourly),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let h = h100_server();
        assert_eq!(h.vcpus, 24);
        assert_eq!(h.gpu_count, 1);
        assert_eq!(h.gpu.name, "H100-80GB");

        let a = a100_server();
        assert_eq!(a.vcpus, 48);
        assert_eq!(a.gpu_count, 4);

        let g = g5_instance(8);
        assert_eq!(g.hourly_usd, Some(1.212));
        assert_eq!(g5_instance(16).hourly_usd, Some(1.624));
        assert_eq!(g5_instance(32).hourly_usd, Some(2.448));
    }

    #[test]
    fn a100_topology_has_nvlink() {
        let t = a100_server().topology();
        // 4 PCIe + 6 NVLink links
        assert_eq!(t.links().len(), 10);
    }

    #[test]
    fn g5_topology_has_no_nvlink() {
        let t = g5_instance(8).topology();
        assert_eq!(t.links().len(), 1);
    }

    #[test]
    #[should_panic(expected = "no g5 instance")]
    fn unknown_g5_size_panics() {
        g5_instance(64);
    }
}
