//! VRAM allocation accounting.
//!
//! The paper reports GPU memory via `nvidia-smi` (Tables 3 and 4). The
//! [`MemoryBook`] tracks live and peak allocation per device and rejects
//! allocations beyond capacity, so out-of-memory configurations (e.g.
//! collocating too many DALL-E consumers) fail the same way they would on
//! real hardware.

use parking_lot::Mutex;
use std::sync::Arc;

/// Error returned when an allocation would exceed device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time of the failure.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    in_use: u64,
    peak: u64,
    allocs: u64,
}

/// Tracks allocations against a fixed capacity, with peak watermarking.
///
/// Cloning shares the underlying book (it models one physical device).
#[derive(Debug, Clone)]
pub struct MemoryBook {
    inner: Arc<Mutex<Inner>>,
}

impl MemoryBook {
    /// Creates a book for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                capacity,
                in_use: 0,
                peak: 0,
                allocs: 0,
            })),
        }
    }

    /// Creates an unbounded book (used for host memory, which the paper
    /// never exhausts in its single-node experiments).
    pub fn unbounded() -> Self {
        Self::new(u64::MAX)
    }

    /// Records an allocation of `bytes`, failing if capacity would be
    /// exceeded.
    pub fn alloc(&self, bytes: u64) -> Result<(), OutOfMemory> {
        let mut inner = self.inner.lock();
        let new_use = inner.in_use.saturating_add(bytes);
        if new_use > inner.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                in_use: inner.in_use,
                capacity: inner.capacity,
            });
        }
        inner.in_use = new_use;
        inner.allocs += 1;
        if new_use > inner.peak {
            inner.peak = new_use;
        }
        Ok(())
    }

    /// Records a free of `bytes`. Saturates at zero: freeing more than was
    /// allocated is a logic error upstream but must not wrap.
    pub fn free(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.in_use = inner.in_use.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.inner.lock().in_use
    }

    /// Highest number of bytes ever simultaneously allocated.
    pub fn peak(&self) -> u64 {
        self.inner.lock().peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    /// Number of *successful* allocations ever recorded (failed ones
    /// change nothing). A warmed-up staging pipeline keeps this constant:
    /// the zero-device-allocation steady state is asserted by sampling it
    /// after warm-up and again at the end of a run.
    pub fn alloc_count(&self) -> u64 {
        self.inner.lock().allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peak() {
        let book = MemoryBook::new(100);
        book.alloc(60).unwrap();
        book.alloc(30).unwrap();
        assert_eq!(book.in_use(), 90);
        book.free(50);
        assert_eq!(book.in_use(), 40);
        assert_eq!(book.peak(), 90);
        assert_eq!(book.alloc_count(), 2);
    }

    #[test]
    fn alloc_count_ignores_failures_and_frees() {
        let book = MemoryBook::new(100);
        book.alloc(80).unwrap();
        let _ = book.alloc(50).unwrap_err();
        book.free(80);
        assert_eq!(book.alloc_count(), 1, "only successful allocs count");
    }

    #[test]
    fn oom_is_reported_with_context() {
        let book = MemoryBook::new(100);
        book.alloc(80).unwrap();
        let err = book.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of device memory"));
        // failed alloc must not change accounting
        assert_eq!(book.in_use(), 80);
    }

    #[test]
    fn free_saturates() {
        let book = MemoryBook::new(10);
        book.alloc(5).unwrap();
        book.free(50);
        assert_eq!(book.in_use(), 0);
    }

    #[test]
    fn clone_shares_device() {
        let book = MemoryBook::new(100);
        let view = book.clone();
        book.alloc(10).unwrap();
        assert_eq!(view.in_use(), 10);
    }

    #[test]
    fn unbounded_accepts_large_allocs() {
        let book = MemoryBook::unbounded();
        book.alloc(u64::MAX / 2).unwrap();
        assert!(book.in_use() > 0);
    }
}
