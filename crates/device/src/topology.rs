//! Link topology between devices: which pairs are connected by PCIe or
//! NVLink, and how a transfer between two devices is routed.
//!
//! TensorSocket's producer loads data onto one GPU; consumers on other GPUs
//! receive it over NVLink when available (Section 3.2.4 of the paper),
//! falling back to a bounce through host PCIe otherwise. [`Topology::path`]
//! resolves exactly that decision.

use crate::DeviceId;

/// Interconnect class of a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Host ↔ GPU over PCIe.
    Pcie,
    /// GPU ↔ GPU over NVLink.
    NvLink,
}

/// A bidirectional link between two devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: DeviceId,
    /// Other endpoint.
    pub b: DeviceId,
    /// Link class.
    pub kind: LinkKind,
    /// Peak bandwidth in bytes per second (one direction).
    pub bandwidth_bps: f64,
}

impl Link {
    /// True if the link connects `x` and `y` in either orientation.
    pub fn connects(&self, x: DeviceId, y: DeviceId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// One hop of a transfer route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Source of the hop.
    pub from: DeviceId,
    /// Destination of the hop.
    pub to: DeviceId,
    /// Which interconnect carries the hop.
    pub kind: LinkKind,
}

/// The resolved route of a device-to-device transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferPath {
    /// Source and destination are the same device; no bytes move.
    Local,
    /// One or two hops over concrete links.
    Hops(Vec<Hop>),
}

impl TransferPath {
    /// The hops of the path (empty for [`TransferPath::Local`]).
    pub fn hops(&self) -> &[Hop] {
        match self {
            TransferPath::Local => &[],
            TransferPath::Hops(h) => h,
        }
    }
}

/// The set of devices in one node together with their links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    gpu_count: u8,
    links: Vec<Link>,
}

/// Default PCIe gen4 x16 bandwidth used when building topologies.
pub const PCIE_GEN4_X16_BPS: f64 = 25.0e9;
/// Default NVLink (per-pair effective) bandwidth.
pub const NVLINK_BPS: f64 = 250.0e9;

impl Topology {
    /// Builds a topology with `gpu_count` GPUs, each connected to the host
    /// over PCIe; if `nvlink_all_pairs` is set, every GPU pair also gets a
    /// direct NVLink link.
    pub fn new(gpu_count: u8, nvlink_all_pairs: bool) -> Self {
        let mut links = Vec::new();
        for g in 0..gpu_count {
            links.push(Link {
                a: DeviceId::Cpu,
                b: DeviceId::Gpu(g),
                kind: LinkKind::Pcie,
                bandwidth_bps: PCIE_GEN4_X16_BPS,
            });
        }
        if nvlink_all_pairs {
            for i in 0..gpu_count {
                for j in (i + 1)..gpu_count {
                    links.push(Link {
                        a: DeviceId::Gpu(i),
                        b: DeviceId::Gpu(j),
                        kind: LinkKind::NvLink,
                        bandwidth_bps: NVLINK_BPS,
                    });
                }
            }
        }
        Self { gpu_count, links }
    }

    /// Number of GPUs in the node.
    pub fn gpu_count(&self) -> u8 {
        self.gpu_count
    }

    /// All devices in the node: the host plus each GPU.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v = vec![DeviceId::Cpu];
        v.extend((0..self.gpu_count).map(DeviceId::Gpu));
        v
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The direct link between two devices, if one exists.
    pub fn direct_link(&self, a: DeviceId, b: DeviceId) -> Option<&Link> {
        self.links.iter().find(|l| l.connects(a, b))
    }

    /// Resolves how a transfer from `from` to `to` is routed:
    ///
    /// * same device → [`TransferPath::Local`],
    /// * direct link (PCIe or NVLink) → one hop,
    /// * GPU→GPU without NVLink → two hops bounced through the host
    ///   (device-to-host then host-to-device over PCIe), which is how
    ///   peer transfers behave without peer access.
    ///
    /// Returns `None` when an endpoint does not exist in the topology.
    pub fn path(&self, from: DeviceId, to: DeviceId) -> Option<TransferPath> {
        let exists = |d: DeviceId| match d {
            DeviceId::Cpu => true,
            DeviceId::Gpu(i) => i < self.gpu_count,
        };
        if !exists(from) || !exists(to) {
            return None;
        }
        if from == to {
            return Some(TransferPath::Local);
        }
        if let Some(link) = self.direct_link(from, to) {
            return Some(TransferPath::Hops(vec![Hop {
                from,
                to,
                kind: link.kind,
            }]));
        }
        // GPU → GPU without a direct link: bounce through the host.
        if from.is_gpu() && to.is_gpu() {
            return Some(TransferPath::Hops(vec![
                Hop {
                    from,
                    to: DeviceId::Cpu,
                    kind: LinkKind::Pcie,
                },
                Hop {
                    from: DeviceId::Cpu,
                    to,
                    kind: LinkKind::Pcie,
                },
            ]));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_links_for_all_gpus() {
        let t = Topology::new(4, true);
        assert_eq!(t.gpu_count(), 4);
        // 4 PCIe + C(4,2)=6 NVLink
        assert_eq!(t.links().len(), 10);
        assert_eq!(t.devices().len(), 5);
    }

    #[test]
    fn local_path_is_empty() {
        let t = Topology::new(2, true);
        assert_eq!(
            t.path(DeviceId::Gpu(1), DeviceId::Gpu(1)),
            Some(TransferPath::Local)
        );
    }

    #[test]
    fn host_to_gpu_uses_pcie() {
        let t = Topology::new(2, false);
        let p = t.path(DeviceId::Cpu, DeviceId::Gpu(0)).unwrap();
        assert_eq!(p.hops().len(), 1);
        assert_eq!(p.hops()[0].kind, LinkKind::Pcie);
    }

    #[test]
    fn gpu_to_gpu_prefers_nvlink() {
        let t = Topology::new(4, true);
        let p = t.path(DeviceId::Gpu(0), DeviceId::Gpu(3)).unwrap();
        assert_eq!(p.hops().len(), 1);
        assert_eq!(p.hops()[0].kind, LinkKind::NvLink);
    }

    #[test]
    fn gpu_to_gpu_without_nvlink_bounces_through_host() {
        let t = Topology::new(2, false);
        let p = t.path(DeviceId::Gpu(0), DeviceId::Gpu(1)).unwrap();
        let hops = p.hops();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].to, DeviceId::Cpu);
        assert_eq!(hops[1].from, DeviceId::Cpu);
        assert!(hops.iter().all(|h| h.kind == LinkKind::Pcie));
    }

    #[test]
    fn unknown_device_yields_none() {
        let t = Topology::new(1, false);
        assert!(t.path(DeviceId::Gpu(0), DeviceId::Gpu(7)).is_none());
    }
}
