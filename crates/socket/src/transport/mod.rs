//! Cross-process transports: `ipc://` (Unix domain sockets) and `tcp://`.
//!
//! The in-process broker ([`crate::endpoint`]) keeps its crossbeam-queue
//! fast path for `inproc://` endpoints; this module provides the same
//! socket semantics across OS processes. Background reader/writer threads
//! bridge each connection onto the *same* bounded `(topic, Multipart)`
//! queues the broker uses, so `PubSocket`/`SubSocket`/`PushSocket`/
//! `PullSocket` behave identically no matter which scheme the endpoint
//! URI names:
//!
//! * per-subscriber bounded queues with the socket's high-water mark, and
//!   the publisher's [`crate::SendPolicy`] applied per peer;
//! * prefix subscriptions evaluated publisher-side (no payload bytes move
//!   for non-matching topics);
//! * peer disconnects surface as [`crate::RecvError::Closed`] after the
//!   queue drains, exactly like the broker.
//!
//! Bind/connect order does not matter: connectors retry in the background
//! until the listener appears (ZeroMQ semantics).

pub(crate) mod pubsub;
pub(crate) mod pushpull;

use crate::error::SendError;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How long background connectors keep retrying before giving up.
pub(crate) const CONNECT_RETRY_FOR: Duration = Duration::from_secs(30);
/// Poll interval of accept loops and connect retries.
pub(crate) const POLL_EVERY: Duration = Duration::from_millis(2);

/// A parsed endpoint URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointAddr {
    /// `inproc://name` — the in-process broker (the full URI is the key).
    Inproc(String),
    /// `ipc:///path/to.sock` — a Unix domain socket.
    Ipc(PathBuf),
    /// `tcp://host:port`.
    Tcp(String),
}

impl EndpointAddr {
    /// Parses an endpoint URI. Names with an unknown or missing scheme
    /// resolve to the in-process broker, preserving the pre-transport
    /// behaviour where any string named a broker endpoint.
    pub fn parse(name: &str) -> Result<EndpointAddr, SendError> {
        if let Some(path) = name.strip_prefix("ipc://") {
            if path.is_empty() {
                return Err(SendError::InvalidEndpoint(name.to_string()));
            }
            return Ok(EndpointAddr::Ipc(PathBuf::from(path)));
        }
        if let Some(hostport) = name.strip_prefix("tcp://") {
            let Some((host, port)) = hostport.rsplit_once(':') else {
                return Err(SendError::InvalidEndpoint(name.to_string()));
            };
            if host.is_empty() || port.parse::<u16>().is_err() {
                return Err(SendError::InvalidEndpoint(name.to_string()));
            }
            return Ok(EndpointAddr::Tcp(hostport.to_string()));
        }
        Ok(EndpointAddr::Inproc(name.to_string()))
    }

    /// True for the in-process broker.
    pub fn is_inproc(&self) -> bool {
        matches!(self, EndpointAddr::Inproc(_))
    }
}

/// A connected stream of either family.
#[derive(Debug)]
pub(crate) enum AnyStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl AnyStream {
    pub(crate) fn try_clone(&self) -> io::Result<AnyStream> {
        Ok(match self {
            AnyStream::Tcp(s) => AnyStream::Tcp(s.try_clone()?),
            AnyStream::Unix(s) => AnyStream::Unix(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any reader thread.
    pub(crate) fn shutdown(&self) {
        match self {
            AnyStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            AnyStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn connect_once(addr: &EndpointAddr) -> io::Result<AnyStream> {
        match addr {
            EndpointAddr::Tcp(hostport) => {
                let s = TcpStream::connect(hostport)?;
                s.set_nodelay(true).ok();
                Ok(AnyStream::Tcp(s))
            }
            EndpointAddr::Ipc(path) => Ok(AnyStream::Unix(UnixStream::connect(path)?)),
            EndpointAddr::Inproc(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "inproc endpoints use the broker",
            )),
        }
    }

    /// Connects with ZeroMQ-style patience: retries until the listener
    /// appears, the deadline passes, or `give_up` returns true.
    pub(crate) fn connect_retry(
        addr: &EndpointAddr,
        timeout: Duration,
        give_up: impl Fn() -> bool,
    ) -> io::Result<AnyStream> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect_once(addr) {
                Ok(s) => return Ok(s),
                Err(e) => {
                    if give_up() {
                        return Err(io::Error::new(io::ErrorKind::Interrupted, "socket dropped"));
                    }
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(POLL_EVERY);
                }
            }
        }
    }
}

impl io::Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener of either family. Non-blocking so accept loops can
/// observe a stop flag.
pub(crate) enum AnyListener {
    Tcp(TcpListener),
    /// Keeps the socket path so drop can unlink it.
    Unix(UnixListener, PathBuf),
}

impl AnyListener {
    pub(crate) fn bind(addr: &EndpointAddr) -> Result<AnyListener, SendError> {
        match addr {
            EndpointAddr::Tcp(hostport) => {
                let l = TcpListener::bind(hostport)
                    .map_err(|e| bind_error(&format!("tcp://{hostport}"), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| SendError::Io(e.to_string()))?;
                Ok(AnyListener::Tcp(l))
            }
            EndpointAddr::Ipc(path) => {
                // A leftover socket file from a dead process would make
                // bind fail forever; only an active listener should.
                if UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)
                    .map_err(|e| bind_error(&format!("ipc://{}", path.display()), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| SendError::Io(e.to_string()))?;
                Ok(AnyListener::Unix(l, path.clone()))
            }
            EndpointAddr::Inproc(name) => Err(SendError::InvalidEndpoint(name.clone())),
        }
    }

    /// One accept attempt; `Ok(None)` when no connection is pending.
    pub(crate) fn accept(&self) -> io::Result<Option<AnyStream>> {
        match self {
            AnyListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true).ok();
                    s.set_nonblocking(false)?;
                    Ok(Some(AnyStream::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            AnyListener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(AnyStream::Unix(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// The concrete local address (resolves `tcp://host:0` to the real
    /// port).
    pub(crate) fn local_endpoint(&self) -> Option<String> {
        match self {
            AnyListener::Tcp(l) => l.local_addr().ok().map(|a| format!("tcp://{a}")),
            AnyListener::Unix(_, path) => Some(format!("ipc://{}", path.display())),
        }
    }
}

impl Drop for AnyListener {
    fn drop(&mut self) {
        if let AnyListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn bind_error(endpoint: &str, e: io::Error) -> SendError {
    if e.kind() == io::ErrorKind::AddrInUse {
        SendError::AddrInUse(endpoint.to_string())
    } else {
        SendError::Io(format!("bind {endpoint}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_schemes() {
        assert_eq!(
            EndpointAddr::parse("inproc://x").unwrap(),
            EndpointAddr::Inproc("inproc://x".into())
        );
        assert_eq!(
            EndpointAddr::parse("ipc:///tmp/a.sock").unwrap(),
            EndpointAddr::Ipc(PathBuf::from("/tmp/a.sock"))
        );
        assert_eq!(
            EndpointAddr::parse("tcp://127.0.0.1:5555").unwrap(),
            EndpointAddr::Tcp("127.0.0.1:5555".into())
        );
        // bare names stay broker keys (back-compat)
        assert!(EndpointAddr::parse("just-a-name").unwrap().is_inproc());
        // malformed remote URIs are rejected
        assert!(EndpointAddr::parse("tcp://nohostport").is_err());
        assert!(EndpointAddr::parse("tcp://host:notaport").is_err());
        assert!(EndpointAddr::parse("ipc://").is_err());
    }

    #[test]
    fn stale_ipc_socket_file_is_reclaimed() {
        let path = std::env::temp_dir().join(format!("ts-sock-stale-{}.sock", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let addr = EndpointAddr::Ipc(path.clone());
        let l = AnyListener::bind(&addr).unwrap();
        drop(l);
        assert!(!path.exists(), "listener drop unlinks the socket file");
    }
}
