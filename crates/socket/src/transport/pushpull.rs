//! PUSH/PULL over `ipc://`/`tcp://` streams.
//!
//! The puller binds and accepts many pushers; every connection's reader
//! thread feeds one shared bounded queue (fan-in). Pushers enqueue into a
//! local bounded queue drained by a writer thread, so `send` applies HWM
//! backpressure and `try_send` reports `Full` exactly like the broker
//! path. A pusher that connects before the puller binds simply buffers —
//! its connector retries in the background.

use crate::error::{RecvError, SendError};
use crate::frame::Multipart;
use crate::transport::{AnyListener, AnyStream, EndpointAddr, CONNECT_RETRY_FOR, POLL_EVERY};
use crate::wire;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use std::io::BufReader;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct PullShared {
    stop: AtomicBool,
    /// Live connections by id; readers remove their entry on exit so
    /// long-lived pullers do not leak one fd per departed pusher.
    conns: Mutex<Vec<(u64, AnyStream)>>,
}

/// The stream-transport receiving side.
pub(crate) struct StreamPull {
    shared: Arc<PullShared>,
    rx: Receiver<Multipart>,
    endpoint: String,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl StreamPull {
    pub(crate) fn bind(
        addr: &EndpointAddr,
        endpoint: &str,
        hwm: usize,
    ) -> Result<StreamPull, SendError> {
        let listener = AnyListener::bind(addr)?;
        let endpoint = listener
            .local_endpoint()
            .unwrap_or_else(|| endpoint.to_string());
        let (tx, rx) = channel::bounded(hwm);
        let shared = Arc::new(PullShared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ts-pull-accept".into())
            .spawn(move || pull_accept_loop(listener, accept_shared, tx))
            .map_err(|e| SendError::Io(format!("spawn accept: {e}")))?;
        Ok(StreamPull {
            shared,
            rx,
            endpoint,
            accept_thread: Some(accept_thread),
        })
    }

    pub(crate) fn endpoint(&self) -> &str {
        &self.endpoint
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Multipart, RecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    pub(crate) fn try_recv(&self) -> Result<Option<Multipart>, RecvError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(RecvError::Closed),
        }
    }

    pub(crate) fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for StreamPull {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for (_, conn) in self.shared.conns.lock().expect("pull conns").drain(..) {
            conn.shutdown();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn pull_accept_loop(listener: AnyListener, shared: Arc<PullShared>, tx: Sender<Multipart>) {
    let mut next_id = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(stream)) => {
                let Ok(read_half) = stream.try_clone() else {
                    continue;
                };
                let id = next_id;
                next_id += 1;
                shared.conns.lock().expect("pull conns").push((id, stream));
                let conn_tx = tx.clone();
                let conn_shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("ts-pull-reader".into())
                    .spawn(move || pull_reader(id, read_half, conn_shared, conn_tx));
                if spawned.is_err() {
                    break;
                }
            }
            Ok(None) => std::thread::sleep(POLL_EVERY),
            Err(_) => break,
        }
    }
    // tx (the accept loop's clone) drops here; the queue closes once the
    // last connection reader exits too.
}

fn pull_reader(id: u64, read_half: AnyStream, shared: Arc<PullShared>, tx: Sender<Multipart>) {
    let mut reader = BufReader::new(read_half);
    while !shared.stop.load(Ordering::SeqCst) {
        let msg = match wire::read_message(&mut reader) {
            Ok(m) => m,
            Err(_) => break,
        };
        if let Some(payload) = msg.into_payload() {
            if tx.send(payload).is_err() {
                break;
            }
        }
    }
    // Close and forget this pusher's connection so a long-lived puller
    // does not accumulate dead fds.
    let mut conns = shared.conns.lock().expect("pull conns");
    if let Some(pos) = conns.iter().position(|(cid, _)| *cid == id) {
        let (_, conn) = conns.remove(pos);
        conn.shutdown();
    }
}

// ---------------------------------------------------------------------------
// push side
// ---------------------------------------------------------------------------

struct PushShared {
    stop: AtomicBool,
}

/// The stream-transport sending side.
pub(crate) struct StreamPush {
    tx: Sender<Multipart>,
    shared: Arc<PushShared>,
}

impl StreamPush {
    pub(crate) fn connect(addr: EndpointAddr, hwm: usize) -> StreamPush {
        let (tx, rx) = channel::bounded(hwm);
        let shared = Arc::new(PushShared {
            stop: AtomicBool::new(false),
        });
        let writer_shared = shared.clone();
        std::thread::Builder::new()
            .name("ts-push-writer".into())
            .spawn(move || push_writer(addr, writer_shared, rx))
            .expect("spawn push writer");
        StreamPush { tx, shared }
    }

    pub(crate) fn send(&self, msg: Multipart) -> Result<(), SendError> {
        self.tx.send(msg).map_err(|_| SendError::Disconnected)
    }

    pub(crate) fn try_send(&self, msg: Multipart) -> Result<(), SendError> {
        match self.tx.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SendError::Full),
            Err(TrySendError::Disconnected(_)) => Err(SendError::Disconnected),
        }
    }
}

impl Drop for StreamPush {
    fn drop(&mut self) {
        // Abort a pending connect; a live writer drains the queue (the
        // sender side closing wakes it) and then exits.
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

fn push_writer(addr: EndpointAddr, shared: Arc<PushShared>, rx: Receiver<Multipart>) {
    let give_up = {
        let shared = shared.clone();
        move || shared.stop.load(Ordering::SeqCst)
    };
    let mut stream = match AnyStream::connect_retry(&addr, CONNECT_RETRY_FOR, give_up) {
        Ok(s) => s,
        Err(_) => return, // rx drops: senders observe Disconnected
    };
    loop {
        let msg = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if wire::write_data(&mut stream, &msg).is_err() {
            break; // peer gone: rx drops, senders observe Disconnected
        }
    }
    stream.shutdown();
}
