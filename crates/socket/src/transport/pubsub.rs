//! PUB/SUB over `ipc://`/`tcp://` streams.
//!
//! The publisher accepts connections; each connected subscriber gets a
//! bounded queue (the socket HWM) drained by a dedicated writer thread,
//! and a reader thread that processes `SUB`/`UNSUB` control messages.
//! Prefix filtering happens publisher-side, so only matching topics cross
//! the wire. Subscribes are acknowledged (`SUBACK`) so a subscriber can
//! order a subscription strictly before its next control-plane message.

use crate::error::{RecvError, SendError};
use crate::frame::Multipart;
use crate::pubsub::SendPolicy;
use crate::transport::{AnyListener, AnyStream, EndpointAddr, CONNECT_RETRY_FOR, POLL_EVERY};
use crate::wire;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use std::io::BufReader;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocking subscribe waits for its `SUBACK`.
const SUBSCRIBE_ACK_TIMEOUT: Duration = Duration::from_secs(10);

enum PeerItem {
    Data(Bytes, Multipart),
    SubAck(u64),
}

struct Peer {
    id: u64,
    alive: AtomicBool,
    prefixes: Mutex<Vec<Vec<u8>>>,
    tx: Sender<PeerItem>,
    stream: AnyStream,
    /// Messages accepted into the queue / flushed to the socket. Drop
    /// uses the pair to linger until queued messages reach the wire.
    queued: AtomicU64,
    written: AtomicU64,
}

impl Peer {
    fn matches(&self, topic: &[u8]) -> bool {
        self.prefixes
            .lock()
            .expect("peer prefixes")
            .iter()
            .any(|p| topic.starts_with(p.as_slice()))
    }

    fn retire(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.stream.shutdown();
    }
}

struct PubShared {
    stop: AtomicBool,
    hwm: usize,
    peers: Mutex<Vec<Arc<Peer>>>,
    next_id: AtomicU64,
}

/// The stream-transport publishing side.
pub(crate) struct StreamPub {
    shared: Arc<PubShared>,
    policy: SendPolicy,
    endpoint: String,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl StreamPub {
    pub(crate) fn bind(
        addr: &EndpointAddr,
        endpoint: &str,
        policy: SendPolicy,
        hwm: usize,
    ) -> Result<StreamPub, SendError> {
        let listener = AnyListener::bind(addr)?;
        let endpoint = listener
            .local_endpoint()
            .unwrap_or_else(|| endpoint.to_string());
        let shared = Arc::new(PubShared {
            stop: AtomicBool::new(false),
            hwm,
            peers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ts-pub-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| SendError::Io(format!("spawn accept: {e}")))?;
        Ok(StreamPub {
            shared,
            policy,
            endpoint,
            accept_thread: Some(accept_thread),
        })
    }

    pub(crate) fn endpoint(&self) -> &str {
        &self.endpoint
    }

    pub(crate) fn subscriber_count(&self) -> usize {
        self.shared
            .peers
            .lock()
            .expect("peers")
            .iter()
            .filter(|p| p.alive.load(Ordering::SeqCst))
            .count()
    }

    pub(crate) fn send(&self, topic: &[u8], msg: Multipart) -> Result<usize, SendError> {
        let peers: Vec<Arc<Peer>> = self.shared.peers.lock().expect("peers").clone();
        let topic_bytes = Bytes::copy_from_slice(topic);
        let mut delivered = 0usize;
        let mut dead = Vec::new();
        for peer in &peers {
            if !peer.alive.load(Ordering::SeqCst) {
                dead.push(peer.id);
                continue;
            }
            if !peer.matches(topic) {
                continue;
            }
            let item = PeerItem::Data(topic_bytes.clone(), msg.clone());
            match self.policy {
                SendPolicy::Block => match peer.tx.send(item) {
                    Ok(()) => {
                        peer.queued.fetch_add(1, Ordering::SeqCst);
                        delivered += 1;
                    }
                    Err(_) => dead.push(peer.id),
                },
                SendPolicy::DropNewest => match peer.tx.try_send(item) {
                    Ok(()) => {
                        peer.queued.fetch_add(1, Ordering::SeqCst);
                        delivered += 1;
                    }
                    Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => dead.push(peer.id),
                },
            }
        }
        if !dead.is_empty() {
            let mut peers = self.shared.peers.lock().expect("peers");
            peers.retain(|p| {
                if dead.contains(&p.id) {
                    p.retire();
                    false
                } else {
                    true
                }
            });
        }
        Ok(delivered)
    }
}

impl Drop for StreamPub {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Linger: let each peer's writer flush what is already queued (a
        // just-published `End`, say) before tearing the connection down —
        // the broker transport equally delivers queued messages to
        // subscribers after the publisher drops.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let unflushed = {
                let peers = self.shared.peers.lock().expect("peers");
                peers.iter().any(|p| {
                    p.alive.load(Ordering::SeqCst)
                        && p.written.load(Ordering::SeqCst) < p.queued.load(Ordering::SeqCst)
                })
            };
            if !unflushed || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for peer in self.shared.peers.lock().expect("peers").drain(..) {
            peer.retire();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: AnyListener, shared: Arc<PubShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(stream)) => {
                if let Err(e) = add_peer(&shared, stream) {
                    // Peer setup failed (fd exhaustion, ...): drop the
                    // connection, keep accepting.
                    let _ = e;
                }
            }
            Ok(None) => std::thread::sleep(POLL_EVERY),
            Err(_) => break,
        }
    }
}

fn add_peer(shared: &Arc<PubShared>, stream: AnyStream) -> std::io::Result<()> {
    let write_half = stream.try_clone()?;
    let read_half = stream.try_clone()?;
    let (tx, rx) = channel::bounded::<PeerItem>(shared.hwm);
    let peer = Arc::new(Peer {
        id: shared.next_id.fetch_add(1, Ordering::SeqCst),
        alive: AtomicBool::new(true),
        prefixes: Mutex::new(Vec::new()),
        tx,
        stream,
        queued: AtomicU64::new(0),
        written: AtomicU64::new(0),
    });
    shared.peers.lock().expect("peers").push(peer.clone());

    let writer_peer = peer.clone();
    std::thread::Builder::new()
        .name("ts-pub-writer".into())
        .spawn(move || peer_writer(write_half, rx, writer_peer))?;

    let reader_shared = shared.clone();
    std::thread::Builder::new()
        .name("ts-pub-reader".into())
        .spawn(move || peer_reader(read_half, peer, reader_shared))?;
    Ok(())
}

fn peer_writer(mut stream: AnyStream, rx: Receiver<PeerItem>, peer: Arc<Peer>) {
    loop {
        let item = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => {
                if peer.alive.load(Ordering::SeqCst) {
                    continue;
                }
                break;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let result = match item {
            PeerItem::Data(topic, msg) => wire::write_topic_data(&mut stream, &topic, &msg),
            PeerItem::SubAck(req) => {
                wire::write_message(&mut stream, wire::KIND_SUBACK, &[&req.to_le_bytes()])
            }
        };
        if result.is_err() {
            break;
        }
        peer.written.fetch_add(1, Ordering::SeqCst);
    }
    peer.retire();
}

fn peer_reader(read_half: AnyStream, peer: Arc<Peer>, shared: Arc<PubShared>) {
    let mut reader = BufReader::new(read_half);
    while peer.alive.load(Ordering::SeqCst) && !shared.stop.load(Ordering::SeqCst) {
        let msg = match wire::read_message(&mut reader) {
            Ok(m) => m,
            Err(_) => break,
        };
        match msg.kind {
            wire::KIND_SUB if msg.frames.len() == 2 && msg.frames[1].len() == 8 => {
                let req = u64::from_le_bytes(msg.frames[1][..].try_into().expect("8 bytes"));
                peer.prefixes
                    .lock()
                    .expect("peer prefixes")
                    .push(msg.frames[0].to_vec());
                // Ack once the prefix is visible to `send`.
                if peer.tx.send(PeerItem::SubAck(req)).is_err() {
                    break;
                }
                peer.queued.fetch_add(1, Ordering::SeqCst);
            }
            wire::KIND_UNSUB if msg.frames.len() == 1 => {
                let mut prefixes = peer.prefixes.lock().expect("peer prefixes");
                if let Some(pos) = prefixes.iter().position(|p| p[..] == msg.frames[0][..]) {
                    prefixes.remove(pos);
                }
            }
            _ => {} // unknown control: ignore, stay compatible forward
        }
    }
    peer.retire();
    shared
        .peers
        .lock()
        .expect("peers")
        .retain(|p| p.id != peer.id);
}

// ---------------------------------------------------------------------------
// subscriber side
// ---------------------------------------------------------------------------

struct SubState {
    /// Write half once connected.
    writer: Option<AnyStream>,
    /// Locally recorded prefixes (flushed on connect).
    prefixes: Vec<Vec<u8>>,
    /// Highest `SUBACK` request id seen.
    acked: u64,
    /// Highest request id of the connector's connect-time prefix flush;
    /// a subscribe that recorded its prefix pre-connection waits for this
    /// instead of re-sending (re-sending would register a duplicate).
    flushed_req: u64,
    /// True after the connector gave up (never connected).
    failed: bool,
}

struct SubShared {
    stop: AtomicBool,
    state: Mutex<SubState>,
    cond: Condvar,
    next_req: AtomicU64,
}

/// The stream-transport subscribing side.
pub(crate) struct StreamSub {
    shared: Arc<SubShared>,
    rx: Receiver<(Bytes, Multipart)>,
    endpoint: String,
}

impl StreamSub {
    pub(crate) fn connect(addr: EndpointAddr, endpoint: &str, hwm: usize) -> StreamSub {
        let (tx, rx) = channel::bounded(hwm);
        let shared = Arc::new(SubShared {
            stop: AtomicBool::new(false),
            state: Mutex::new(SubState {
                writer: None,
                prefixes: Vec::new(),
                acked: 0,
                flushed_req: 0,
                failed: false,
            }),
            cond: Condvar::new(),
            next_req: AtomicU64::new(1),
        });
        let conn_shared = shared.clone();
        std::thread::Builder::new()
            .name("ts-sub-conn".into())
            .spawn(move || sub_connection(addr, conn_shared, tx))
            .expect("spawn subscriber connector");
        StreamSub {
            shared,
            rx,
            endpoint: endpoint.to_string(),
        }
    }

    pub(crate) fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Registers a prefix. Blocks (bounded) until the publisher has
    /// acknowledged it, so anything sent on another connection *after*
    /// this returns cannot race ahead of the subscription.
    pub(crate) fn subscribe(&self, prefix: &[u8]) {
        let deadline = Instant::now() + SUBSCRIBE_ACK_TIMEOUT;
        let mut state = self.shared.state.lock().expect("sub state");
        state.prefixes.push(prefix.to_vec());
        // Whether the connector will register this prefix for us in its
        // connect-time flush (it flushes everything recorded while the
        // connection did not exist yet).
        let flushed_by_connector = state.writer.is_none();
        // Wait for the connection (the connector flushes recorded
        // prefixes itself on connect, which covers us if we time out
        // here).
        while state.writer.is_none() && !state.failed {
            let now = Instant::now();
            if now >= deadline || self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .expect("sub state");
            state = guard;
        }
        if state.failed {
            return;
        }
        let req = if flushed_by_connector {
            // The connector already sent our prefix; just await its ack.
            state.flushed_req
        } else {
            let req = self.shared.next_req.fetch_add(1, Ordering::SeqCst);
            let writer = state.writer.as_mut().expect("connected");
            if wire::write_message(writer, wire::KIND_SUB, &[prefix, &req.to_le_bytes()]).is_err() {
                return;
            }
            req
        };
        while state.acked < req {
            let now = Instant::now();
            if now >= deadline || self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .expect("sub state");
            state = guard;
        }
    }

    pub(crate) fn unsubscribe(&self, prefix: &[u8]) {
        let mut state = self.shared.state.lock().expect("sub state");
        if let Some(pos) = state.prefixes.iter().position(|p| p == prefix) {
            state.prefixes.remove(pos);
        }
        if let Some(writer) = state.writer.as_mut() {
            let _ = wire::write_message(writer, wire::KIND_UNSUB, &[prefix]);
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<(Bytes, Multipart), RecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    pub(crate) fn try_recv(&self) -> Result<Option<(Bytes, Multipart)>, RecvError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(RecvError::Closed),
        }
    }

    pub(crate) fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for StreamSub {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let mut state = self.shared.state.lock().expect("sub state");
        if let Some(writer) = state.writer.take() {
            writer.shutdown();
        }
        self.shared.cond.notify_all();
    }
}

fn sub_connection(addr: EndpointAddr, shared: Arc<SubShared>, tx: Sender<(Bytes, Multipart)>) {
    let give_up = {
        let shared = shared.clone();
        move || shared.stop.load(Ordering::SeqCst)
    };
    let stream = match AnyStream::connect_retry(&addr, CONNECT_RETRY_FOR, give_up) {
        Ok(s) => s,
        Err(_) => {
            let mut state = shared.state.lock().expect("sub state");
            state.failed = true;
            shared.cond.notify_all();
            return; // tx drops: receiver observes Closed
        }
    };
    let read_half = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    // Flush prefixes recorded before the connection existed, then expose
    // the writer.
    {
        let mut state = shared.state.lock().expect("sub state");
        let mut writer = stream;
        let mut last_req = 0;
        for prefix in state.prefixes.clone() {
            let req = shared.next_req.fetch_add(1, Ordering::SeqCst);
            let _ =
                wire::write_message(&mut writer, wire::KIND_SUB, &[&prefix, &req.to_le_bytes()]);
            last_req = req;
        }
        state.flushed_req = last_req;
        state.writer = Some(writer);
        shared.cond.notify_all();
    }
    let mut reader = BufReader::new(read_half);
    while !shared.stop.load(Ordering::SeqCst) {
        let msg = match wire::read_message(&mut reader) {
            Ok(m) => m,
            Err(_) => break,
        };
        match msg.kind {
            wire::KIND_DATA => {
                if let Some((topic, payload)) = msg.into_topic_and_payload() {
                    if tx.send((topic, payload)).is_err() {
                        break; // subscriber dropped
                    }
                }
            }
            wire::KIND_SUBACK if msg.frames.len() == 1 && msg.frames[0].len() == 8 => {
                let req = u64::from_le_bytes(msg.frames[0][..].try_into().expect("8 bytes"));
                let mut state = shared.state.lock().expect("sub state");
                state.acked = state.acked.max(req);
                shared.cond.notify_all();
            }
            _ => {}
        }
    }
    // Reader gone: future subscribe calls must not wait forever.
    let mut state = shared.state.lock().expect("sub state");
    state.failed = true;
    if let Some(writer) = state.writer.take() {
        writer.shutdown();
    }
    shared.cond.notify_all();
}
