//! PUB/SUB: one-to-many multicast with per-subscriber bounded queues.
//!
//! The endpoint URI picks the transport: `inproc://` stays on the
//! in-process broker; `ipc://` and `tcp://` run over real sockets with the
//! same semantics (see [`crate::transport`]).

use crate::endpoint::{BrokerEntry, Context, PubSubEndpoint, SubEntry};
use crate::error::{RecvError, SendError};
use crate::frame::Multipart;
use crate::transport::pubsub::{StreamPub, StreamSub};
use crate::transport::EndpointAddr;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// What a publisher does when a subscriber queue hits its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPolicy {
    /// Wait for queue space (backpressure). TensorSocket's data socket uses
    /// this: combined with ACK gating the producer never overruns consumers.
    Block,
    /// Drop the message for that subscriber (classic ZeroMQ PUB behaviour).
    DropNewest,
}

/// Broker-backed publisher state; removing the endpoint on drop closes all
/// subscriber queues.
struct BrokerPub {
    ctx: Context,
    name: String,
    policy: SendPolicy,
}

impl BrokerPub {
    fn send(&self, topic: &[u8], msg: Multipart) -> Result<usize, SendError> {
        // Snapshot the subscriber list so the broker lock is not held while
        // (potentially) blocking on a full queue.
        let subs: Vec<Arc<SubEntry>> = {
            let eps = self.ctx.broker.endpoints.lock();
            match eps.get(&self.name) {
                Some(BrokerEntry::PubSub(ps)) => ps.subs.clone(),
                _ => Vec::new(),
            }
        };
        let topic_bytes = Bytes::copy_from_slice(topic);
        let mut delivered = 0usize;
        let mut dead: Vec<u64> = Vec::new();
        for sub in &subs {
            if !sub.matches(topic) {
                continue;
            }
            let item = (topic_bytes.clone(), msg.clone());
            match self.policy {
                SendPolicy::Block => match sub.tx.send(item) {
                    Ok(()) => delivered += 1,
                    Err(_) => dead.push(sub.id),
                },
                SendPolicy::DropNewest => match sub.tx.try_send(item) {
                    Ok(()) => delivered += 1,
                    Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => dead.push(sub.id),
                },
            }
        }
        if !dead.is_empty() {
            let mut eps = self.ctx.broker.endpoints.lock();
            if let Some(BrokerEntry::PubSub(ps)) = eps.get_mut(&self.name) {
                ps.subs.retain(|s| !dead.contains(&s.id));
            }
        }
        Ok(delivered)
    }

    fn subscriber_count(&self) -> usize {
        let eps = self.ctx.broker.endpoints.lock();
        match eps.get(&self.name) {
            Some(BrokerEntry::PubSub(ps)) => ps.subs.len(),
            _ => 0,
        }
    }
}

impl Drop for BrokerPub {
    fn drop(&mut self) {
        // Removing the endpoint drops all subscriber senders: subscribers
        // drain whatever is queued and then observe `Closed`.
        self.ctx.broker.endpoints.lock().remove(&self.name);
    }
}

enum PubInner {
    Broker(BrokerPub),
    Stream(StreamPub),
}

/// The publishing side of a PUB/SUB endpoint. One binder per endpoint.
pub struct PubSocket {
    inner: PubInner,
    name: String,
}

impl std::fmt::Debug for PubSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PubSocket")
            .field("endpoint", &self.endpoint())
            .finish()
    }
}

impl PubSocket {
    /// Binds a publisher with the [`SendPolicy::Block`] policy and the
    /// context's default high-water mark.
    pub fn bind(ctx: &Context, name: &str) -> Result<Self, SendError> {
        Self::bind_with(ctx, name, SendPolicy::Block, None)
    }

    /// Binds a publisher with an explicit policy and per-subscriber queue
    /// capacity.
    pub fn bind_with(
        ctx: &Context,
        name: &str,
        policy: SendPolicy,
        hwm: Option<usize>,
    ) -> Result<Self, SendError> {
        let hwm = hwm.unwrap_or(ctx.broker.default_hwm).max(1);
        let addr = EndpointAddr::parse(name)?;
        if !addr.is_inproc() {
            let stream = StreamPub::bind(&addr, name, policy, hwm)?;
            let name = stream.endpoint().to_string();
            return Ok(Self {
                inner: PubInner::Stream(stream),
                name,
            });
        }
        let mut eps = ctx.broker.endpoints.lock();
        match eps.get_mut(name) {
            None => {
                eps.insert(
                    name.to_string(),
                    BrokerEntry::PubSub(PubSubEndpoint {
                        bound: true,
                        hwm,
                        next_sub_id: 0,
                        subs: Vec::new(),
                    }),
                );
            }
            Some(BrokerEntry::PubSub(ps)) => {
                if ps.bound {
                    return Err(SendError::AddrInUse(name.to_string()));
                }
                ps.bound = true;
                ps.hwm = hwm;
            }
            Some(BrokerEntry::PushPull(_)) => {
                return Err(SendError::AddrInUse(name.to_string()));
            }
        }
        Ok(Self {
            inner: PubInner::Broker(BrokerPub {
                ctx: ctx.clone(),
                name: name.to_string(),
                policy,
            }),
            name: name.to_string(),
        })
    }

    /// Publishes a message under `topic`, returning the number of
    /// subscribers it was delivered to.
    ///
    /// Subscribers whose receiving half is gone are pruned. With
    /// [`SendPolicy::DropNewest`], subscribers with full queues miss the
    /// message (not an error).
    pub fn send(&self, topic: &[u8], msg: Multipart) -> Result<usize, SendError> {
        match &self.inner {
            PubInner::Broker(b) => b.send(topic, msg),
            PubInner::Stream(s) => s.send(topic, msg),
        }
    }

    /// Number of currently connected subscribers.
    pub fn subscriber_count(&self) -> usize {
        match &self.inner {
            PubInner::Broker(b) => b.subscriber_count(),
            PubInner::Stream(s) => s.subscriber_count(),
        }
    }

    /// The endpoint name. For `tcp://host:0` binds this is the resolved
    /// address with the real port.
    pub fn endpoint(&self) -> &str {
        &self.name
    }
}

/// Broker-backed subscriber state.
struct BrokerSub {
    ctx: Context,
    name: String,
    id: u64,
    prefixes: crate::endpoint::SharedPrefixes,
    rx: Receiver<(Bytes, Multipart)>,
}

impl Drop for BrokerSub {
    fn drop(&mut self) {
        let mut eps = self.ctx.broker.endpoints.lock();
        if let Some(BrokerEntry::PubSub(ps)) = eps.get_mut(&self.name) {
            let id = self.id;
            ps.subs.retain(|s| s.id != id);
        }
    }
}

enum SubInner {
    Broker(BrokerSub),
    Stream(StreamSub),
}

/// The subscribing side of a PUB/SUB endpoint.
pub struct SubSocket {
    inner: SubInner,
}

impl std::fmt::Debug for SubSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubSocket")
            .field("queued", &self.queued())
            .finish()
    }
}

impl SubSocket {
    /// Connects a subscriber. Connecting before the publisher binds is fine;
    /// messages published before connecting are not seen (slow-joiner
    /// semantics, which is why TensorSocket needs rubberbanding). Remote
    /// (`ipc://`/`tcp://`) connects retry in the background until the
    /// publisher appears.
    ///
    /// # Panics
    /// Panics if the endpoint name is malformed, or already used by a
    /// PUSH/PULL pair — those are wiring bugs, not runtime conditions.
    pub fn connect(ctx: &Context, name: &str) -> Self {
        let addr =
            EndpointAddr::parse(name).unwrap_or_else(|e| panic!("invalid endpoint {name}: {e}"));
        if !addr.is_inproc() {
            return Self {
                inner: SubInner::Stream(StreamSub::connect(addr, name, ctx.broker.default_hwm)),
            };
        }
        let mut eps = ctx.broker.endpoints.lock();
        let ps = match eps.entry(name.to_string()).or_insert_with(|| {
            BrokerEntry::PubSub(PubSubEndpoint {
                bound: false,
                hwm: ctx.broker.default_hwm,
                next_sub_id: 0,
                subs: Vec::new(),
            })
        }) {
            BrokerEntry::PubSub(ps) => ps,
            BrokerEntry::PushPull(_) => panic!("endpoint {name} is a PUSH/PULL endpoint"),
        };
        let (tx, rx) = channel::bounded(ps.hwm);
        let id = ps.next_sub_id;
        ps.next_sub_id += 1;
        let prefixes: crate::endpoint::SharedPrefixes =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        ps.subs.push(Arc::new(SubEntry {
            id,
            prefixes: prefixes.clone(),
            tx,
        }));
        drop(eps);
        Self {
            inner: SubInner::Broker(BrokerSub {
                ctx: ctx.clone(),
                name: name.to_string(),
                id,
                prefixes,
                rx,
            }),
        }
    }

    /// Subscribes to every topic starting with `prefix`. An empty prefix
    /// subscribes to everything.
    ///
    /// On remote transports this blocks (bounded) until the publisher has
    /// acknowledged the subscription, so a message sent on another
    /// connection after `subscribe` returns cannot overtake it.
    pub fn subscribe(&self, prefix: &[u8]) {
        match &self.inner {
            SubInner::Broker(b) => b.prefixes.lock().push(prefix.to_vec()),
            SubInner::Stream(s) => s.subscribe(prefix),
        }
    }

    /// Removes a previously added prefix.
    pub fn unsubscribe(&self, prefix: &[u8]) {
        match &self.inner {
            SubInner::Broker(b) => {
                let mut p = b.prefixes.lock();
                if let Some(pos) = p.iter().position(|x| x == prefix) {
                    p.remove(pos);
                }
            }
            SubInner::Stream(s) => s.unsubscribe(prefix),
        }
    }

    /// Receives the next matching message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(Bytes, Multipart), RecvError> {
        match &self.inner {
            SubInner::Broker(b) => match b.rx.recv_timeout(timeout) {
                Ok(m) => Ok(m),
                Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
                Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
            },
            SubInner::Stream(s) => s.recv_timeout(timeout),
        }
    }

    /// Non-blocking receive; `Ok(None)` when no message is queued.
    pub fn try_recv(&self) -> Result<Option<(Bytes, Multipart)>, RecvError> {
        match &self.inner {
            SubInner::Broker(b) => match b.rx.try_recv() {
                Ok(m) => Ok(Some(m)),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => Err(RecvError::Closed),
            },
            SubInner::Stream(s) => s.try_recv(),
        }
    }

    /// Messages currently queued for this subscriber.
    pub fn queued(&self) -> usize {
        match &self.inner {
            SubInner::Broker(b) => b.rx.len(),
            SubInner::Stream(s) => s.queued(),
        }
    }

    /// The endpoint this subscriber connected to.
    pub fn endpoint(&self) -> &str {
        match &self.inner {
            SubInner::Broker(b) => &b.name,
            SubInner::Stream(s) => s.endpoint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(s: &'static [u8]) -> Multipart {
        Multipart::single(Bytes::from_static(s))
    }

    #[test]
    fn multicast_reaches_all_matching_subscribers() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        let s1 = SubSocket::connect(&ctx, "inproc://d");
        let s2 = SubSocket::connect(&ctx, "inproc://d");
        let s3 = SubSocket::connect(&ctx, "inproc://d");
        s1.subscribe(b"batch");
        s2.subscribe(b"");
        s3.subscribe(b"ctrl");
        let n = publisher.send(b"batch/1", msg(b"x")).unwrap();
        assert_eq!(n, 2);
        assert!(s1.try_recv().unwrap().is_some());
        assert!(s2.try_recv().unwrap().is_some());
        assert!(s3.try_recv().unwrap().is_none());
    }

    #[test]
    fn slow_joiner_misses_earlier_messages() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        publisher.send(b"t", msg(b"early")).unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        publisher.send(b"t", msg(b"late")).unwrap();
        let (_, m) = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&m.frames()[0][..], b"late");
        assert!(sub.try_recv().unwrap().is_none());
    }

    #[test]
    fn connect_before_bind_works() {
        let ctx = Context::new();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        publisher.send(b"t", msg(b"hello")).unwrap();
        assert!(sub.try_recv().unwrap().is_some());
    }

    #[test]
    fn double_bind_rejected() {
        let ctx = Context::new();
        let _p1 = PubSocket::bind(&ctx, "inproc://d").unwrap();
        assert!(matches!(
            PubSocket::bind(&ctx, "inproc://d").unwrap_err(),
            SendError::AddrInUse(_)
        ));
    }

    #[test]
    fn rebind_after_drop_is_allowed() {
        let ctx = Context::new();
        drop(PubSocket::bind(&ctx, "inproc://d").unwrap());
        let _p2 = PubSocket::bind(&ctx, "inproc://d").unwrap();
    }

    #[test]
    fn dropped_subscriber_is_pruned_on_send() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        assert_eq!(publisher.subscriber_count(), 1);
        drop(sub);
        assert_eq!(publisher.subscriber_count(), 0);
        assert_eq!(publisher.send(b"t", msg(b"x")).unwrap(), 0);
    }

    #[test]
    fn publisher_drop_closes_subscribers_after_drain() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        publisher.send(b"t", msg(b"x")).unwrap();
        drop(publisher);
        // queued message still delivered
        assert!(sub.try_recv().unwrap().is_some());
        // then the channel reports closed
        assert!(matches!(sub.try_recv().unwrap_err(), RecvError::Closed));
    }

    #[test]
    fn drop_newest_policy_skips_full_queues() {
        let ctx = Context::with_hwm(1);
        let publisher =
            PubSocket::bind_with(&ctx, "inproc://d", SendPolicy::DropNewest, Some(1)).unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        assert_eq!(publisher.send(b"t", msg(b"1")).unwrap(), 1);
        // queue full now; second send is dropped for this subscriber
        assert_eq!(publisher.send(b"t", msg(b"2")).unwrap(), 0);
        assert_eq!(sub.queued(), 1);
    }

    #[test]
    fn blocking_policy_applies_backpressure() {
        let ctx = Context::new();
        let publisher =
            PubSocket::bind_with(&ctx, "inproc://d", SendPolicy::Block, Some(1)).unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"");
        publisher.send(b"t", msg(b"1")).unwrap();
        let t = std::thread::spawn(move || {
            publisher.send(b"t", msg(b"2")).unwrap();
            publisher
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "send should block on the full queue");
        sub.recv_timeout(Duration::from_secs(1)).unwrap();
        let _publisher = t.join().unwrap();
        assert_eq!(
            &sub.recv_timeout(Duration::from_secs(1)).unwrap().1.frames()[0][..],
            b"2"
        );
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://d").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://d");
        sub.subscribe(b"a");
        sub.subscribe(b"b");
        sub.unsubscribe(b"a");
        publisher.send(b"a/1", msg(b"x")).unwrap();
        publisher.send(b"b/1", msg(b"y")).unwrap();
        let (topic, _) = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&topic[..], b"b/1");
        assert!(sub.try_recv().unwrap().is_none());
    }
}
