//! The in-process broker: named endpoints shared by all sockets of a
//! [`Context`].

use crate::frame::Multipart;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default per-queue high-water mark (messages).
pub const DEFAULT_HWM: usize = 1024;

/// Prefix list shared between the broker entry and the `SubSocket` handle.
pub(crate) type SharedPrefixes = Arc<Mutex<Vec<Vec<u8>>>>;

pub(crate) struct SubEntry {
    pub(crate) id: u64,
    pub(crate) prefixes: SharedPrefixes,
    pub(crate) tx: Sender<(Bytes, Multipart)>,
}

impl SubEntry {
    pub(crate) fn matches(&self, topic: &[u8]) -> bool {
        self.prefixes
            .lock()
            .iter()
            .any(|p| topic.starts_with(p.as_slice()))
    }
}

pub(crate) struct PubSubEndpoint {
    pub(crate) bound: bool,
    pub(crate) hwm: usize,
    pub(crate) next_sub_id: u64,
    pub(crate) subs: Vec<Arc<SubEntry>>,
}

pub(crate) struct PushPullEndpoint {
    pub(crate) bound: bool,
    pub(crate) tx: Sender<Multipart>,
    /// Present until a `PullSocket` binds and takes it.
    pub(crate) rx: Option<Receiver<Multipart>>,
}

pub(crate) enum BrokerEntry {
    PubSub(PubSubEndpoint),
    PushPull(PushPullEndpoint),
}

pub(crate) struct Broker {
    pub(crate) endpoints: Mutex<HashMap<String, BrokerEntry>>,
    pub(crate) default_hwm: usize,
}

/// A socket context: the namespace in which endpoints live.
///
/// Mirrors a ZeroMQ context. All sockets created from clones of the same
/// context can talk to each other; separate contexts are fully isolated.
#[derive(Clone)]
pub struct Context {
    pub(crate) broker: Arc<Broker>,
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let eps = self.broker.endpoints.lock();
        f.debug_struct("Context")
            .field("endpoints", &eps.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Context {
    /// A context with the default high-water mark.
    pub fn new() -> Self {
        Self::with_hwm(DEFAULT_HWM)
    }

    /// A context whose queues hold at most `hwm` messages.
    pub fn with_hwm(hwm: usize) -> Self {
        Self {
            broker: Arc::new(Broker {
                endpoints: Mutex::new(HashMap::new()),
                default_hwm: hwm.max(1),
            }),
        }
    }

    /// Names of currently registered endpoints (diagnostics).
    pub fn endpoint_names(&self) -> Vec<String> {
        self.broker.endpoints.lock().keys().cloned().collect()
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives shard `shard`'s base endpoint from a group base endpoint,
/// respecting the transport scheme. Shard 0 *is* the base endpoint, so a
/// single-shard group is wire-compatible with an unsharded deployment:
///
/// * `inproc://name` → `inproc://name/s<shard>`;
/// * `ipc:///path.sock` → `ipc:///path.sock.s<shard>` (a socket file per
///   shard, next to the base);
/// * `tcp://host:port` → `tcp://host:port + 2*shard` — each shard claims
///   two consecutive ports (data and control), so shard bases are spaced
///   two apart. Out-of-range derived ports are rejected at bind/parse
///   time, like the channel derivation.
pub fn shard_endpoint(base: &str, shard: usize) -> String {
    if shard == 0 {
        return base.to_string();
    }
    if base.starts_with("ipc://") {
        return format!("{base}.s{shard}");
    }
    if let Some(hostport) = base.strip_prefix("tcp://") {
        if let Some((host, port)) = hostport.rsplit_once(':') {
            if let Ok(port) = port.parse::<u16>() {
                return format!("tcp://{host}:{}", port as u64 + 2 * shard as u64);
            }
        }
    }
    format!("{base}/s{shard}")
}

/// Derives the per-channel endpoint from a base endpoint URI, respecting
/// the transport scheme:
///
/// * `inproc://base` (and bare names) → `inproc://base/data|ctrl` — broker
///   keys, unchanged from the in-process-only design;
/// * `ipc:///path/to.sock` → `ipc:///path/to.sock.data|ctrl` — two Unix
///   socket files next to each other;
/// * `tcp://host:port` → data on `port`, control on `port + 1`. Both
///   channels need known ports, so ephemeral binds (`tcp://host:0`) are
///   not supported through endpoint maps — pick explicit ports below
///   65535.
pub fn channel_endpoint(base: &str, channel: &str) -> String {
    if base.starts_with("ipc://") {
        return format!("{base}.{channel}");
    }
    if let Some(hostport) = base.strip_prefix("tcp://") {
        if let Some((host, port)) = hostport.rsplit_once(':') {
            if let Ok(port) = port.parse::<u16>() {
                let offset: u32 = if channel == "ctrl" { 1 } else { 0 };
                // Widened arithmetic: a base of 65535 derives the
                // out-of-range "65536", which bind rejects as an invalid
                // endpoint instead of this function panicking/wrapping.
                return format!("tcp://{host}:{}", port as u32 + offset);
            }
        }
    }
    format!("{base}/{channel}")
}

/// The full socket-endpoint layout of one deployment, derived from a
/// single base URI: per-shard data (PUB/SUB) and control (PUSH/PULL)
/// endpoints, scheme-aware.
///
/// This is the single place endpoint derivation lives — producer and
/// consumer configurations both resolve their channels through it, and
/// the attach handshake describes a topology as nothing more than
/// `(base, shards)` plus an optional sparse **override table**: a
/// multi-host producer pins shard `i`'s base to an explicit URI (a
/// different host, say) instead of the scheme-derived default, and the
/// v2 WELCOME carries the table so consumers rebuild the identical map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointMap {
    base: String,
    shards: usize,
    /// Sparse `(shard, base URI)` overrides, sorted by shard.
    overrides: Vec<(u32, String)>,
}

impl EndpointMap {
    /// A map over `shards` shard pipelines rooted at `base` (clamped to at
    /// least one shard; shard 0 is the base itself).
    pub fn new(base: impl Into<String>, shards: usize) -> Self {
        Self {
            base: base.into(),
            shards: shards.max(1),
            overrides: Vec::new(),
        }
    }

    /// A map whose listed shards use explicit base URIs instead of the
    /// scheme-derived defaults. Later entries for the same shard win.
    pub fn with_overrides(
        base: impl Into<String>,
        shards: usize,
        overrides: impl IntoIterator<Item = (u32, String)>,
    ) -> Self {
        let mut map = Self::new(base, shards);
        for (shard, uri) in overrides {
            map.set_override(shard, uri);
        }
        map
    }

    /// Pins shard `shard`'s base endpoint to `uri` (replacing any earlier
    /// override for the same shard).
    pub fn set_override(&mut self, shard: u32, uri: impl Into<String>) {
        let uri = uri.into();
        match self.overrides.binary_search_by_key(&shard, |(s, _)| *s) {
            Ok(i) => self.overrides[i].1 = uri,
            Err(i) => self.overrides.insert(i, (shard, uri)),
        }
    }

    /// The sparse override table, sorted by shard (what the v2 WELCOME
    /// advertises).
    pub fn overrides(&self) -> &[(u32, String)] {
        &self.overrides
    }

    /// The base endpoint URI the map was built from.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Number of shards in the topology.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard `shard`'s base endpoint: the override if one is pinned,
    /// otherwise the scheme-derived default ([`shard_endpoint`]).
    pub fn shard_base(&self, shard: usize) -> String {
        if let Ok(i) = self
            .overrides
            .binary_search_by_key(&(shard as u32), |(s, _)| *s)
        {
            return self.overrides[i].1.clone();
        }
        shard_endpoint(&self.base, shard)
    }

    /// Shard `shard`'s data (PUB/SUB) endpoint.
    pub fn data(&self, shard: usize) -> String {
        channel_endpoint(&self.shard_base(shard), "data")
    }

    /// Shard `shard`'s control (PUSH/PULL) endpoint.
    pub fn ctrl(&self, shard: usize) -> String {
        channel_endpoint(&self.shard_base(shard), "ctrl")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_are_isolated() {
        let a = Context::new();
        let b = Context::new();
        let _p = crate::PubSocket::bind(&a, "inproc://x").unwrap();
        assert!(a.endpoint_names().contains(&"inproc://x".to_string()));
        assert!(b.endpoint_names().is_empty());
        // binding the same name in the other context succeeds
        let _p2 = crate::PubSocket::bind(&b, "inproc://x").unwrap();
    }

    #[test]
    fn shard_endpoints_follow_scheme() {
        assert_eq!(shard_endpoint("inproc://ts", 0), "inproc://ts");
        assert_eq!(shard_endpoint("inproc://ts", 2), "inproc://ts/s2");
        assert_eq!(
            shard_endpoint("ipc:///tmp/ts.sock", 0),
            "ipc:///tmp/ts.sock"
        );
        assert_eq!(
            shard_endpoint("ipc:///tmp/ts.sock", 1),
            "ipc:///tmp/ts.sock.s1"
        );
        assert_eq!(
            shard_endpoint("tcp://127.0.0.1:6000", 0),
            "tcp://127.0.0.1:6000"
        );
        // Each shard owns two consecutive ports (data + ctrl).
        assert_eq!(
            shard_endpoint("tcp://127.0.0.1:6000", 1),
            "tcp://127.0.0.1:6002"
        );
        assert_eq!(
            shard_endpoint("tcp://127.0.0.1:6000", 3),
            "tcp://127.0.0.1:6006"
        );
    }

    #[test]
    fn endpoint_map_derives_every_channel_from_one_base() {
        let m = EndpointMap::new("tcp://127.0.0.1:7000", 2);
        assert_eq!(m.base(), "tcp://127.0.0.1:7000");
        assert_eq!(m.shards(), 2);
        assert_eq!(m.data(0), "tcp://127.0.0.1:7000");
        assert_eq!(m.ctrl(0), "tcp://127.0.0.1:7001");
        assert_eq!(m.data(1), "tcp://127.0.0.1:7002");
        assert_eq!(m.ctrl(1), "tcp://127.0.0.1:7003");
        let m = EndpointMap::new("ipc:///tmp/ts.sock", 1);
        assert_eq!(m.data(0), "ipc:///tmp/ts.sock.data");
        assert_eq!(m.ctrl(0), "ipc:///tmp/ts.sock.ctrl");
        assert_eq!(m.data(1), "ipc:///tmp/ts.sock.s1.data");
        let m = EndpointMap::new("inproc://ts", 0);
        assert_eq!(m.shards(), 1, "clamped to one shard");
        assert_eq!(m.data(0), "inproc://ts/data");
        assert_eq!(m.ctrl(2), "inproc://ts/s2/ctrl");
    }

    #[test]
    fn overrides_replace_derivation_per_shard_only() {
        let m = EndpointMap::with_overrides(
            "tcp://10.0.0.1:7000",
            3,
            [(1u32, "tcp://10.0.0.2:9000".to_string())],
        );
        // Non-overridden shards keep the scheme-derived layout…
        assert_eq!(m.data(0), "tcp://10.0.0.1:7000");
        assert_eq!(m.ctrl(0), "tcp://10.0.0.1:7001");
        assert_eq!(m.data(2), "tcp://10.0.0.1:7004");
        // …while the pinned shard's channels derive from its override.
        assert_eq!(m.shard_base(1), "tcp://10.0.0.2:9000");
        assert_eq!(m.data(1), "tcp://10.0.0.2:9000");
        assert_eq!(m.ctrl(1), "tcp://10.0.0.2:9001");
        assert_eq!(m.overrides(), &[(1, "tcp://10.0.0.2:9000".to_string())]);
        // Re-pinning the same shard replaces, not duplicates.
        let mut m = m;
        m.set_override(1, "ipc:///tmp/s1.sock");
        assert_eq!(m.data(1), "ipc:///tmp/s1.sock.data");
        assert_eq!(m.overrides().len(), 1);
    }

    #[test]
    fn sub_entry_prefix_matching() {
        let (tx, _rx) = crossbeam::channel::bounded(1);
        let e = SubEntry {
            id: 0,
            prefixes: Arc::new(Mutex::new(vec![b"batch".to_vec()])),
            tx,
        };
        assert!(e.matches(b"batch/17"));
        assert!(!e.matches(b"ctrl/17"));
        e.prefixes.lock().push(Vec::new()); // empty prefix = everything
        assert!(e.matches(b"ctrl/17"));
    }
}
