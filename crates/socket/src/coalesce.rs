//! A latest-wins coalescing cell for control-plane announcements.
//!
//! Some producer→consumer signals are *state*, not *events*: a per-shard
//! publish cursor, a liveness watermark, a progress gauge. Delivering the
//! full history of such a signal to a consumer that stalled is pure waste —
//! worse, it head-of-line-blocks the messages that do matter. A
//! coalescing cell collapses every intermediate value: the writer
//! [`offer`](CoalescingSender::offer)s as often as it likes, the reader
//! [`poll`](CoalescingReceiver::poll)s whatever is *current* and observes
//! at most one pending value no matter how long it slept.
//!
//! This is the socket-layer analogue of the coalescing ring buffers used by
//! low-latency market-data feeds: offers never block, never allocate after
//! construction, and the cell holds exactly zero or one value.
//!
//! ```
//! use ts_socket::coalesce::coalescing_cell;
//!
//! let (tx, rx) = coalescing_cell::<u64>();
//! tx.offer(1);
//! tx.offer(2);
//! tx.offer(3);
//! assert_eq!(rx.poll(), Some(3)); // 1 and 2 were coalesced away
//! assert_eq!(rx.poll(), None);    // drained until the next offer
//! ```

use parking_lot::Mutex;
use std::sync::Arc;

/// Shared single-slot state behind a sender/receiver pair.
#[derive(Debug)]
struct CoalescingCell<T> {
    slot: Mutex<Option<T>>,
}

/// Writing half of a coalescing cell: every [`offer`](Self::offer)
/// replaces whatever the reader has not consumed yet (latest-wins).
///
/// Cloning shares the cell — several writers coalesce into the same slot.
#[derive(Debug)]
pub struct CoalescingSender<T> {
    cell: Arc<CoalescingCell<T>>,
}

impl<T> Clone for CoalescingSender<T> {
    fn clone(&self) -> Self {
        Self {
            cell: Arc::clone(&self.cell),
        }
    }
}

/// Reading half of a coalescing cell: [`poll`](Self::poll) takes the
/// current value, leaving the cell empty until the next offer.
#[derive(Debug)]
pub struct CoalescingReceiver<T> {
    cell: Arc<CoalescingCell<T>>,
}

impl<T> CoalescingSender<T> {
    /// Publishes `value`, replacing any value the reader has not taken
    /// yet. Returns the value that was displaced, if any — `Some` means
    /// the reader is lagging and an intermediate state was coalesced.
    pub fn offer(&self, value: T) -> Option<T> {
        self.cell.slot.lock().replace(value)
    }
}

impl<T> CoalescingReceiver<T> {
    /// Takes the latest offered value, or `None` when nothing new arrived
    /// since the last poll. Never blocks.
    pub fn poll(&self) -> Option<T> {
        self.cell.slot.lock().take()
    }

    /// Reads the latest offered value without consuming it.
    pub fn peek(&self) -> Option<T>
    where
        T: Clone,
    {
        self.cell.slot.lock().clone()
    }
}

/// Creates a connected latest-wins sender/receiver pair over an empty
/// cell.
pub fn coalescing_cell<T>() -> (CoalescingSender<T>, CoalescingReceiver<T>) {
    let cell = Arc::new(CoalescingCell {
        slot: Mutex::new(None),
    });
    (
        CoalescingSender {
            cell: Arc::clone(&cell),
        },
        CoalescingReceiver { cell },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_offer_wins() {
        let (tx, rx) = coalescing_cell();
        assert_eq!(rx.poll(), None);
        assert_eq!(tx.offer(1u32), None);
        assert_eq!(tx.offer(2), Some(1), "unread value displaced");
        assert_eq!(tx.offer(3), Some(2));
        assert_eq!(rx.peek(), Some(3));
        assert_eq!(rx.poll(), Some(3));
        assert_eq!(rx.poll(), None, "poll drains the cell");
        tx.offer(4);
        assert_eq!(rx.poll(), Some(4));
    }

    #[test]
    fn a_stalled_reader_sees_exactly_one_value() {
        let (tx, rx) = coalescing_cell();
        let writer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.offer(i);
            }
        });
        writer.join().unwrap();
        // However long the reader slept, the backlog is one value deep and
        // it is the most recent one.
        assert_eq!(rx.poll(), Some(9_999));
        assert_eq!(rx.poll(), None);
    }

    #[test]
    fn cloned_senders_share_the_slot() {
        let (tx, rx) = coalescing_cell();
        let tx2 = tx.clone();
        tx.offer("a");
        tx2.offer("b");
        assert_eq!(rx.poll(), Some("b"));
        assert_eq!(rx.poll(), None);
    }
}
