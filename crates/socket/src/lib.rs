#![warn(missing_docs)]

//! ZeroMQ-style messaging for the TensorSocket reproduction.
//!
//! The paper uses ZeroMQ sockets (§3.2.3): a PUB/SUB pair multicasts batch
//! payloads from the producer to all consumers, and separate channels carry
//! acknowledgements and heartbeats back. This crate reproduces the subset
//! TensorSocket relies on:
//!
//! * [`PubSocket`]/[`SubSocket`] — one-to-many multicast with per-subscriber
//!   bounded queues (high-water mark), prefix subscriptions, and ZeroMQ's
//!   "slow joiner" semantics (a subscriber only sees messages published
//!   after it connected);
//! * [`PushSocket`]/[`PullSocket`] — many-to-one fan-in used for ACKs,
//!   heartbeats and join requests;
//! * [`Multipart`] — multi-frame messages (`topic` + payload frames).
//!
//! ## Endpoint URIs
//!
//! The endpoint scheme picks the transport; the socket API is identical
//! across all three:
//!
//! * `inproc://name` — the in-process broker ([`endpoint`]): crossbeam
//!   queues inside one [`Context`], zero syscalls. What the paper's
//!   single-node evaluation effectively measures.
//! * `ipc:///path/to.sock` — Unix domain sockets, for *collocated
//!   processes* (the paper's deployment model: independent training
//!   processes on one machine share one loader).
//! * `tcp://host:port` — TCP, for crossing machines. `tcp://127.0.0.1:0`
//!   binds an ephemeral port; read it back from
//!   [`PubSocket::endpoint`]/[`PullSocket::endpoint`].
//!
//! Remote messages use the length-prefixed multipart framing of [`wire`];
//! background reader/writer threads bridge each connection onto the same
//! bounded queues the broker uses ([`transport`]), so HWM backpressure,
//! prefix filtering and disconnect-as-[`RecvError::Closed`] behave the
//! same everywhere. Bind/connect order does not matter on any transport.
//! Sockets unregister on drop, and peers observe disconnection as pruned
//! deliveries rather than errors, like ZeroMQ.

pub mod coalesce;
pub mod endpoint;
pub mod error;
pub mod frame;
pub mod pubsub;
pub mod pushpull;
pub mod transport;
pub mod uri;
pub mod wire;

pub use coalesce::{coalescing_cell, CoalescingReceiver, CoalescingSender};
pub use endpoint::{channel_endpoint, shard_endpoint, Context, EndpointMap};
pub use error::{RecvError, SendError};
pub use frame::Multipart;
pub use pubsub::{PubSocket, SendPolicy, SubSocket};
pub use pushpull::{PullSocket, PushSocket};
pub use transport::EndpointAddr;
pub use uri::{Endpoint, EndpointError, Scheme};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    #[test]
    fn end_to_end_pub_sub_push_pull() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://data").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://data");
        sub.subscribe(b"batch");

        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let push = PushSocket::connect(&ctx, "inproc://acks");

        publisher
            .send(
                b"batch/0",
                Multipart::single(Bytes::from_static(b"payload")),
            )
            .unwrap();
        let (topic, msg) = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&topic[..], b"batch/0");
        assert_eq!(&msg.frames()[0][..], b"payload");

        push.send(Multipart::single(Bytes::from_static(b"ack")))
            .unwrap();
        let ack = pull.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&ack.frames()[0][..], b"ack");
    }
}
