#![warn(missing_docs)]

//! ZeroMQ-style in-process messaging for the TensorSocket reproduction.
//!
//! The paper uses ZeroMQ sockets (§3.2.3): a PUB/SUB pair multicasts batch
//! payloads from the producer to all consumers, and separate channels carry
//! acknowledgements and heartbeats back. The evaluation is single-node, so
//! ZeroMQ there is an in-memory transport; this crate reproduces the subset
//! TensorSocket relies on:
//!
//! * [`PubSocket`]/[`SubSocket`] — one-to-many multicast with per-subscriber
//!   bounded queues (high-water mark), prefix subscriptions, and ZeroMQ's
//!   "slow joiner" semantics (a subscriber only sees messages published
//!   after it connected);
//! * [`PushSocket`]/[`PullSocket`] — many-to-one fan-in used for ACKs,
//!   heartbeats and join requests;
//! * [`Multipart`] — multi-frame messages (`topic` + payload frames).
//!
//! Endpoints are named (`"inproc://data"`); bind/connect order does not
//! matter. Sockets unregister on drop, and peers observe disconnection as
//! pruned deliveries rather than errors, like ZeroMQ.

pub mod endpoint;
pub mod error;
pub mod frame;
pub mod pubsub;
pub mod pushpull;

pub use endpoint::Context;
pub use error::{RecvError, SendError};
pub use frame::Multipart;
pub use pubsub::{PubSocket, SendPolicy, SubSocket};
pub use pushpull::{PullSocket, PushSocket};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    #[test]
    fn end_to_end_pub_sub_push_pull() {
        let ctx = Context::new();
        let publisher = PubSocket::bind(&ctx, "inproc://data").unwrap();
        let sub = SubSocket::connect(&ctx, "inproc://data");
        sub.subscribe(b"batch");

        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let push = PushSocket::connect(&ctx, "inproc://acks");

        publisher
            .send(b"batch/0", Multipart::single(Bytes::from_static(b"payload")))
            .unwrap();
        let (topic, msg) = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&topic[..], b"batch/0");
        assert_eq!(&msg.frames()[0][..], b"payload");

        push.send(Multipart::single(Bytes::from_static(b"ack"))).unwrap();
        let ack = pull.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&ack.frames()[0][..], b"ack");
    }
}
