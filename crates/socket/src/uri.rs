//! The parsed, typed endpoint URI.
//!
//! Historically every public API took endpoints as raw `&str` URIs and
//! validated them only at bind/connect time, deep inside the transport
//! layer. [`Endpoint`] moves that validation to the API boundary: it
//! parses once (scheme, host/path/name, port), rejects malformed URIs
//! with a typed [`EndpointError`], and round-trips through [`Display`]
//! to the exact canonical string the transports expect. Builders and
//! connect/scrape entry points accept `impl TryInto<Endpoint>`, so the
//! legacy `&str` call sites keep compiling — the string is simply parsed
//! (and rejected) up front instead of failing later with an opaque
//! socket error.
//!
//! [`Display`]: std::fmt::Display

use std::fmt;
use std::str::FromStr;

/// The transport scheme of an [`Endpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `inproc://name` — the in-process broker.
    Inproc,
    /// `ipc:///path/to.sock` — a Unix domain socket.
    Ipc,
    /// `tcp://host:port`.
    Tcp,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheme::Inproc => "inproc",
            Scheme::Ipc => "ipc",
            Scheme::Tcp => "tcp",
        })
    }
}

/// A malformed endpoint URI, with the offending string and why it was
/// rejected. Surfaced as `TsError::Endpoint` by the runtime crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointError {
    /// The URI as given.
    pub uri: String,
    /// Human-readable rejection reason.
    pub reason: String,
}

impl fmt::Display for EndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid endpoint `{}`: {}", self.uri, self.reason)
    }
}

impl std::error::Error for EndpointError {}

/// A parsed endpoint URI: scheme + host (or path, or broker name) +
/// port (tcp only).
///
/// Construct with [`FromStr`]/`TryFrom<&str>` (`"tcp://host:port"`,
/// `"ipc:///path.sock"`, `"inproc://name"` — bare names are broker
/// names, preserving the historical behaviour) or the typed
/// constructors. [`Display`] renders the canonical URI string, which is
/// what the transport layer binds/connects.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    scheme: Scheme,
    /// tcp host, ipc path, or inproc broker name (without the scheme).
    host: String,
    /// Port, `Some` only for tcp.
    port: Option<u16>,
}

impl Endpoint {
    /// A `tcp://host:port` endpoint.
    pub fn tcp(host: impl Into<String>, port: u16) -> Self {
        Self {
            scheme: Scheme::Tcp,
            host: host.into(),
            port: Some(port),
        }
    }

    /// An `ipc://<path>` endpoint.
    pub fn ipc(path: impl Into<String>) -> Self {
        Self {
            scheme: Scheme::Ipc,
            host: path.into(),
            port: None,
        }
    }

    /// An `inproc://<name>` endpoint.
    pub fn inproc(name: impl Into<String>) -> Self {
        Self {
            scheme: Scheme::Inproc,
            host: name.into(),
            port: None,
        }
    }

    /// The transport scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host (tcp), filesystem path (ipc) or broker name (inproc).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port; `Some` only for tcp endpoints.
    pub fn port(&self) -> Option<u16> {
        self.port
    }
}

impl FromStr for Endpoint {
    type Err = EndpointError;

    fn from_str(uri: &str) -> Result<Self, EndpointError> {
        let err = |reason: &str| EndpointError {
            uri: uri.to_string(),
            reason: reason.to_string(),
        };
        if let Some(path) = uri.strip_prefix("ipc://") {
            if path.is_empty() {
                return Err(err("ipc endpoint needs a socket path"));
            }
            return Ok(Endpoint::ipc(path));
        }
        if let Some(hostport) = uri.strip_prefix("tcp://") {
            let Some((host, port)) = hostport.rsplit_once(':') else {
                return Err(err("tcp endpoint needs host:port"));
            };
            if host.is_empty() {
                return Err(err("tcp endpoint needs a host"));
            }
            let port: u16 = port
                .parse()
                .map_err(|_| err("tcp port must be an integer in 0..=65535"))?;
            return Ok(Endpoint::tcp(host, port));
        }
        // Unknown or missing scheme: an in-process broker name, like the
        // transport layer has always treated it. Strip an explicit
        // inproc:// prefix so Display round-trips canonically.
        let name = uri.strip_prefix("inproc://").unwrap_or(uri);
        if name.is_empty() {
            return Err(err("endpoint must not be empty"));
        }
        Ok(Endpoint::inproc(name))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.scheme, self.port) {
            (Scheme::Tcp, Some(p)) => write!(f, "tcp://{}:{p}", self.host),
            (Scheme::Tcp, None) => write!(f, "tcp://{}", self.host),
            (Scheme::Ipc, _) => write!(f, "ipc://{}", self.host),
            (Scheme::Inproc, _) => write!(f, "inproc://{}", self.host),
        }
    }
}

impl TryFrom<&str> for Endpoint {
    type Error = EndpointError;

    fn try_from(uri: &str) -> Result<Self, EndpointError> {
        uri.parse()
    }
}

impl TryFrom<&String> for Endpoint {
    type Error = EndpointError;

    fn try_from(uri: &String) -> Result<Self, EndpointError> {
        uri.parse()
    }
}

impl TryFrom<String> for Endpoint {
    type Error = EndpointError;

    fn try_from(uri: String) -> Result<Self, EndpointError> {
        uri.parse()
    }
}

impl From<&Endpoint> for Endpoint {
    fn from(e: &Endpoint) -> Endpoint {
        e.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips_every_scheme() {
        for uri in [
            "tcp://127.0.0.1:5555",
            "ipc:///tmp/ts.sock",
            "inproc://tensorsocket",
        ] {
            let ep: Endpoint = uri.parse().unwrap();
            assert_eq!(ep.to_string(), uri, "Display must round-trip");
        }
        let ep: Endpoint = "tcp://example.org:80".parse().unwrap();
        assert_eq!(ep.scheme(), Scheme::Tcp);
        assert_eq!(ep.host(), "example.org");
        assert_eq!(ep.port(), Some(80));
        // Bare names are broker names; they canonicalise to inproc://.
        let ep: Endpoint = "just-a-name".parse().unwrap();
        assert_eq!(ep.scheme(), Scheme::Inproc);
        assert_eq!(ep.to_string(), "inproc://just-a-name");
    }

    #[test]
    fn rejects_malformed_uris_with_the_offending_string() {
        for bad in [
            "tcp://nohostport",
            "tcp://host:notaport",
            "tcp://host:65536",
            "tcp://:5555",
            "ipc://",
            "",
        ] {
            let e = bad.parse::<Endpoint>().unwrap_err();
            assert_eq!(e.uri, bad);
            assert!(!e.reason.is_empty());
        }
    }

    #[test]
    fn typed_constructors_match_parsed_form() {
        assert_eq!(
            Endpoint::tcp("127.0.0.1", 7000),
            "tcp://127.0.0.1:7000".parse().unwrap()
        );
        assert_eq!(
            Endpoint::ipc("/tmp/a.sock"),
            "ipc:///tmp/a.sock".parse().unwrap()
        );
        assert_eq!(Endpoint::inproc("x"), "inproc://x".parse().unwrap());
    }
}
