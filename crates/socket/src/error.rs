//! Socket errors.

/// Errors from send operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The endpoint name is already bound by another socket.
    AddrInUse(String),
    /// The receiving side of a PUSH/PULL endpoint is gone.
    Disconnected,
    /// A non-blocking send found the peer queue full.
    Full,
    /// The endpoint URI is malformed (bad scheme syntax, missing port...).
    InvalidEndpoint(String),
    /// An OS-level socket error on an `ipc://`/`tcp://` endpoint.
    Io(String),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::AddrInUse(ep) => write!(f, "endpoint already bound: {ep}"),
            SendError::Disconnected => write!(f, "peer disconnected"),
            SendError::Full => write!(f, "peer queue full"),
            SendError::InvalidEndpoint(ep) => write!(f, "invalid endpoint: {ep}"),
            SendError::Io(e) => write!(f, "socket io: {e}"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors from receive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders are gone and the queue is drained.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Closed => write!(f, "channel closed"),
        }
    }
}

impl std::error::Error for RecvError {}
