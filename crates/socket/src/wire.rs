//! Length-prefixed multipart wire framing for `ipc://` and `tcp://`
//! endpoints.
//!
//! Every message on a stream is
//!
//! ```text
//! [kind: u8] [nframes: u32le] ( [len: u32le] [bytes...] )*
//! ```
//!
//! Frame boundaries are preserved exactly — a [`crate::Multipart`] arrives
//! with the same frame count it was sent with, like ZeroMQ multipart
//! messages. The `kind` byte multiplexes data and subscription control on
//! one connection:
//!
//! * [`KIND_DATA`] — a payload message. On PUB/SUB connections frame 0 is
//!   the topic; on PUSH/PULL connections all frames are payload.
//! * [`KIND_SUB`] / [`KIND_UNSUB`] — subscriber → publisher prefix
//!   (un)registration. `SUB` carries `[prefix, req_id: u64le]` and is
//!   acknowledged.
//! * [`KIND_SUBACK`] — publisher → subscriber: `[req_id: u64le]`, sent
//!   once the prefix is registered. `SubSocket::subscribe` blocks on this
//!   so a subsequent control-plane message (e.g. TensorSocket's `Ready`)
//!   can never overtake the subscription it depends on.

use crate::frame::Multipart;
use bytes::Bytes;
use std::io::{self, Read, Write};

/// Payload message.
pub const KIND_DATA: u8 = 0;
/// Subscribe request (prefix + request id).
pub const KIND_SUB: u8 = 1;
/// Unsubscribe request (prefix).
pub const KIND_UNSUB: u8 = 2;
/// Subscribe acknowledgement (request id).
pub const KIND_SUBACK: u8 = 3;

/// Upper bound on a single frame; protects a reader from a corrupt or
/// hostile length prefix. Payloads ride in shared memory, so real frames
/// are tiny metadata — 256 MiB is beyond generous.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// Upper bound on frames per message.
pub const MAX_FRAMES: u32 = 4096;

/// A message as read off a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Message kind ([`KIND_DATA`], [`KIND_SUB`], ...).
    pub kind: u8,
    /// The frames, boundaries preserved.
    pub frames: Vec<Bytes>,
}

impl WireMessage {
    /// Interprets a PUB/SUB data message as `(topic, payload frames)`.
    pub fn into_topic_and_payload(self) -> Option<(Bytes, Multipart)> {
        if self.kind != KIND_DATA || self.frames.is_empty() {
            return None;
        }
        let mut frames = self.frames;
        let topic = frames.remove(0);
        Some((topic, Multipart::from_frames(frames)))
    }

    /// Interprets a PUSH/PULL data message as payload frames.
    pub fn into_payload(self) -> Option<Multipart> {
        if self.kind != KIND_DATA {
            return None;
        }
        Some(Multipart::from_frames(self.frames))
    }
}

/// Serializes one message into a single buffer (one `write_all`, so
/// concurrent writers on a shared stream can't interleave frames).
pub fn encode_message(kind: u8, frames: &[&[u8]]) -> Vec<u8> {
    let payload: usize = frames.iter().map(|f| f.len() + 4).sum();
    let mut out = Vec::with_capacity(5 + payload);
    out.push(kind);
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    for f in frames {
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(f);
    }
    out
}

/// Writes one message to `w` (flushes).
pub fn write_message(w: &mut impl Write, kind: u8, frames: &[&[u8]]) -> io::Result<()> {
    w.write_all(&encode_message(kind, frames))?;
    w.flush()
}

/// Writes a PUB/SUB data message: topic frame + payload frames.
pub fn write_topic_data(w: &mut impl Write, topic: &[u8], msg: &Multipart) -> io::Result<()> {
    let mut frames: Vec<&[u8]> = Vec::with_capacity(1 + msg.len());
    frames.push(topic);
    frames.extend(msg.frames().iter().map(|b| &b[..]));
    write_message(w, KIND_DATA, &frames)
}

/// Writes a PUSH/PULL data message: payload frames only.
pub fn write_data(w: &mut impl Write, msg: &Multipart) -> io::Result<()> {
    let frames: Vec<&[u8]> = msg.frames().iter().map(|b| &b[..]).collect();
    write_message(w, KIND_DATA, &frames)
}

fn read_exact_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads one message from `r`. `Err(UnexpectedEof)` on a cleanly closed
/// peer (between messages) and `Err(InvalidData)` on malformed framing.
pub fn read_message(r: &mut impl Read) -> io::Result<WireMessage> {
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let nframes = read_exact_u32(r)?;
    if nframes > MAX_FRAMES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame count {nframes} exceeds limit"),
        ));
    }
    let mut frames = Vec::with_capacity(nframes as usize);
    for _ in 0..nframes {
        let len = read_exact_u32(r)?;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let mut buf = vec![0u8; len as usize];
        r.read_exact(&mut buf)?;
        frames.push(Bytes::from(buf));
    }
    Ok(WireMessage {
        kind: kind[0],
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_frame_boundaries() {
        let msg = Multipart::from_frames(vec![
            Bytes::from_static(b"alpha"),
            Bytes::new(),
            Bytes::from_static(b"c"),
        ]);
        let mut buf = Vec::new();
        write_topic_data(&mut buf, b"topic/1", &msg).unwrap();
        let mut cursor: &[u8] = &buf;
        let wire = read_message(&mut cursor).unwrap();
        assert_eq!(wire.kind, KIND_DATA);
        let (topic, got) = wire.into_topic_and_payload().unwrap();
        assert_eq!(&topic[..], b"topic/1");
        assert_eq!(got.len(), 3);
        assert_eq!(&got.frames()[0][..], b"alpha");
        assert!(got.frames()[1].is_empty());
        assert_eq!(&got.frames()[2][..], b"c");
        assert!(cursor.is_empty());
    }

    #[test]
    fn back_to_back_messages() {
        let mut buf = Vec::new();
        write_message(&mut buf, KIND_SUB, &[b"prefix", &7u64.to_le_bytes()]).unwrap();
        write_data(&mut buf, &Multipart::single(Bytes::from_static(b"x"))).unwrap();
        let mut cursor: &[u8] = &buf;
        let first = read_message(&mut cursor).unwrap();
        assert_eq!(first.kind, KIND_SUB);
        assert_eq!(&first.frames[0][..], b"prefix");
        let second = read_message(&mut cursor).unwrap();
        assert_eq!(second.into_payload().unwrap().byte_len(), 1);
    }

    #[test]
    fn truncation_is_eof() {
        let mut buf = Vec::new();
        write_data(&mut buf, &Multipart::single(Bytes::from_static(b"hello"))).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor: &[u8] = &buf;
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = vec![KIND_DATA];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut cursor: &[u8] = &buf;
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
