//! PUSH/PULL: many-to-one fan-in, used for ACKs, heartbeats and joins.
//!
//! The endpoint URI picks the transport: `inproc://` stays on the
//! in-process broker; `ipc://` and `tcp://` run over real sockets (see
//! [`crate::transport`]).

use crate::endpoint::{BrokerEntry, Context, PushPullEndpoint};
use crate::error::{RecvError, SendError};
use crate::frame::Multipart;
use crate::transport::pushpull::{StreamPull, StreamPush};
use crate::transport::EndpointAddr;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use std::time::Duration;

fn ensure_endpoint(ctx: &Context, name: &str) -> Result<Sender<Multipart>, SendError> {
    let mut eps = ctx.broker.endpoints.lock();
    match eps.get(name) {
        Some(BrokerEntry::PushPull(pp)) => Ok(pp.tx.clone()),
        Some(BrokerEntry::PubSub(_)) => Err(SendError::AddrInUse(name.to_string())),
        None => {
            let (tx, rx) = channel::bounded(ctx.broker.default_hwm);
            eps.insert(
                name.to_string(),
                BrokerEntry::PushPull(PushPullEndpoint {
                    bound: false,
                    tx: tx.clone(),
                    rx: Some(rx),
                }),
            );
            Ok(tx)
        }
    }
}

/// Broker-backed puller; removing the endpoint on drop disconnects
/// pushers.
struct BrokerPull {
    ctx: Context,
    name: String,
    rx: Receiver<Multipart>,
}

impl Drop for BrokerPull {
    fn drop(&mut self) {
        // Remove the endpoint: connected pushers observe `Disconnected`.
        self.ctx.broker.endpoints.lock().remove(&self.name);
    }
}

enum PullInner {
    Broker(BrokerPull),
    Stream(StreamPull),
}

/// The receiving side of a PUSH/PULL endpoint. One binder per endpoint.
pub struct PullSocket {
    inner: PullInner,
}

impl std::fmt::Debug for PullSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PullSocket")
            .field("endpoint", &self.endpoint())
            .field("queued", &self.queued())
            .finish()
    }
}

impl PullSocket {
    /// Binds the receiver. Pushers may have connected first; anything they
    /// already queued is delivered.
    pub fn bind(ctx: &Context, name: &str) -> Result<Self, SendError> {
        let addr = EndpointAddr::parse(name)?;
        if !addr.is_inproc() {
            return Ok(Self {
                inner: PullInner::Stream(StreamPull::bind(&addr, name, ctx.broker.default_hwm)?),
            });
        }
        ensure_endpoint(ctx, name)?;
        let mut eps = ctx.broker.endpoints.lock();
        match eps.get_mut(name) {
            Some(BrokerEntry::PushPull(pp)) => {
                if pp.bound || pp.rx.is_none() {
                    return Err(SendError::AddrInUse(name.to_string()));
                }
                pp.bound = true;
                let rx = pp.rx.take().expect("checked above");
                Ok(Self {
                    inner: PullInner::Broker(BrokerPull {
                        ctx: ctx.clone(),
                        name: name.to_string(),
                        rx,
                    }),
                })
            }
            _ => Err(SendError::AddrInUse(name.to_string())),
        }
    }

    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Multipart, RecvError> {
        match &self.inner {
            PullInner::Broker(b) => match b.rx.recv_timeout(timeout) {
                Ok(m) => Ok(m),
                Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
                Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
            },
            PullInner::Stream(s) => s.recv_timeout(timeout),
        }
    }

    /// Non-blocking receive; `Ok(None)` when nothing is queued.
    pub fn try_recv(&self) -> Result<Option<Multipart>, RecvError> {
        match &self.inner {
            PullInner::Broker(b) => match b.rx.try_recv() {
                Ok(m) => Ok(Some(m)),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => Err(RecvError::Closed),
            },
            PullInner::Stream(s) => s.try_recv(),
        }
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Multipart> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        match &self.inner {
            PullInner::Broker(b) => b.rx.len(),
            PullInner::Stream(s) => s.queued(),
        }
    }

    /// The endpoint this socket is bound to. For `tcp://host:0` binds this
    /// is the resolved address with the real port.
    pub fn endpoint(&self) -> &str {
        match &self.inner {
            PullInner::Broker(b) => &b.name,
            PullInner::Stream(s) => s.endpoint(),
        }
    }
}

enum PushInner {
    Broker(Sender<Multipart>),
    Stream(StreamPush),
}

/// The sending side of a PUSH/PULL endpoint. Many pushers may connect.
pub struct PushSocket {
    inner: PushInner,
}

impl std::fmt::Debug for PushSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PushSocket").finish_non_exhaustive()
    }
}

impl PushSocket {
    /// Connects a pusher; creates the endpoint if it does not exist yet.
    /// Remote (`ipc://`/`tcp://`) connects retry in the background until
    /// the puller binds; messages queue locally meanwhile.
    ///
    /// # Panics
    /// Panics if the endpoint name is malformed or used by a PUB/SUB pair
    /// (wiring bug).
    pub fn connect(ctx: &Context, name: &str) -> Self {
        let addr =
            EndpointAddr::parse(name).unwrap_or_else(|e| panic!("invalid endpoint {name}: {e}"));
        if !addr.is_inproc() {
            return Self {
                inner: PushInner::Stream(StreamPush::connect(addr, ctx.broker.default_hwm)),
            };
        }
        let tx = ensure_endpoint(ctx, name)
            .unwrap_or_else(|_| panic!("endpoint {name} is a PUB/SUB endpoint"));
        Self {
            inner: PushInner::Broker(tx),
        }
    }

    /// Sends a message, blocking while the queue is full.
    pub fn send(&self, msg: Multipart) -> Result<(), SendError> {
        match &self.inner {
            PushInner::Broker(tx) => tx.send(msg).map_err(|_| SendError::Disconnected),
            PushInner::Stream(s) => s.send(msg),
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, msg: Multipart) -> Result<(), SendError> {
        match &self.inner {
            PushInner::Broker(tx) => match tx.try_send(msg) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(SendError::Full),
                Err(TrySendError::Disconnected(_)) => Err(SendError::Disconnected),
            },
            PushInner::Stream(s) => s.try_send(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(s: &'static [u8]) -> Multipart {
        Multipart::single(Bytes::from_static(s))
    }

    #[test]
    fn many_pushers_one_puller() {
        let ctx = Context::new();
        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let p1 = PushSocket::connect(&ctx, "inproc://acks");
        let p2 = PushSocket::connect(&ctx, "inproc://acks");
        p1.send(msg(b"a")).unwrap();
        p2.send(msg(b"b")).unwrap();
        let got = pull.drain();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn connect_before_bind_preserves_messages() {
        let ctx = Context::new();
        let push = PushSocket::connect(&ctx, "inproc://acks");
        push.send(msg(b"early")).unwrap();
        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let m = pull.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&m.frames()[0][..], b"early");
    }

    #[test]
    fn double_bind_rejected() {
        let ctx = Context::new();
        let _pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        assert!(PullSocket::bind(&ctx, "inproc://acks").is_err());
    }

    #[test]
    fn push_to_dropped_puller_errors() {
        let ctx = Context::new();
        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let push = PushSocket::connect(&ctx, "inproc://acks");
        drop(pull);
        assert_eq!(push.send(msg(b"x")).unwrap_err(), SendError::Disconnected);
    }

    #[test]
    fn try_send_reports_full() {
        let ctx = Context::with_hwm(1);
        let _pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let push = PushSocket::connect(&ctx, "inproc://acks");
        push.try_send(msg(b"1")).unwrap();
        assert_eq!(push.try_send(msg(b"2")).unwrap_err(), SendError::Full);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let ctx = Context::new();
        let _p = crate::PubSocket::bind(&ctx, "inproc://x").unwrap();
        assert!(PullSocket::bind(&ctx, "inproc://x").is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let ctx = Context::new();
        let pull = PullSocket::bind(&ctx, "inproc://acks").unwrap();
        let _push = PushSocket::connect(&ctx, "inproc://acks");
        assert_eq!(
            pull.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }
}
