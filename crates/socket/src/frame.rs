//! Multipart message frames.

use bytes::Bytes;

/// A multi-frame message, mirroring ZeroMQ multipart messages.
///
/// TensorSocket messages put the routing information in the topic and the
/// encoded payload(s) in the frames; frames are cheap reference-counted
/// byte slices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Multipart {
    frames: Vec<Bytes>,
}

impl Multipart {
    /// An empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// A message with one frame.
    pub fn single(frame: Bytes) -> Self {
        Self {
            frames: vec![frame],
        }
    }

    /// A message from multiple frames.
    pub fn from_frames(frames: Vec<Bytes>) -> Self {
        Self { frames }
    }

    /// Appends a frame.
    pub fn push(&mut self, frame: Bytes) -> &mut Self {
        self.frames.push(frame);
        self
    }

    /// The frames.
    pub fn frames(&self) -> &[Bytes] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total payload bytes across frames.
    pub fn byte_len(&self) -> usize {
        self.frames.iter().map(|f| f.len()).sum()
    }
}

impl From<Bytes> for Multipart {
    fn from(b: Bytes) -> Self {
        Multipart::single(b)
    }
}

impl From<Vec<u8>> for Multipart {
    fn from(v: Vec<u8>) -> Self {
        Multipart::single(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Multipart::new();
        assert!(m.is_empty());
        m.push(Bytes::from_static(b"ab"));
        m.push(Bytes::from_static(b"cde"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.byte_len(), 5);
        assert_eq!(&m.frames()[1][..], b"cde");
    }

    #[test]
    fn conversions() {
        let m: Multipart = vec![1u8, 2].into();
        assert_eq!(m.len(), 1);
        let m2: Multipart = Bytes::from_static(b"x").into();
        assert_eq!(m2.byte_len(), 1);
    }
}
