//! Loopback round-trip tests for the `ipc://` and `tcp://` transports:
//! multipart frame boundaries, prefix filtering, HWM backpressure, and
//! peer-disconnect semantics.

use bytes::Bytes;
use std::time::{Duration, Instant};
use ts_socket::{
    Context, Multipart, PubSocket, PullSocket, PushSocket, RecvError, SendPolicy, SubSocket,
};

fn ipc_endpoint(tag: &str) -> String {
    format!(
        "ipc://{}",
        std::env::temp_dir()
            .join(format!("ts-loopback-{}-{tag}.sock", std::process::id()))
            .display()
    )
}

const RECV: Duration = Duration::from_secs(5);

fn msg(frames: &[&[u8]]) -> Multipart {
    Multipart::from_frames(frames.iter().map(|f| Bytes::copy_from_slice(f)).collect())
}

/// Pub/sub round trip preserving multipart boundaries, for one endpoint.
fn pubsub_roundtrip_on(endpoint: &str) {
    let ctx = Context::new();
    let publisher = PubSocket::bind(&ctx, endpoint).unwrap();
    // tcp://host:0 resolves to a real port at bind time.
    let resolved = publisher.endpoint().to_string();
    let sub = SubSocket::connect(&ctx, &resolved);
    sub.subscribe(b"batch");
    let payload = msg(&[b"first", b"", b"third-frame"]);
    // The subscription is acked, so this send cannot race it.
    publisher.send(b"batch/0", payload.clone()).unwrap();
    let (topic, got) = sub.recv_timeout(RECV).unwrap();
    assert_eq!(&topic[..], b"batch/0");
    assert_eq!(got.len(), 3, "frame boundaries preserved");
    assert_eq!(&got.frames()[0][..], b"first");
    assert!(got.frames()[1].is_empty());
    assert_eq!(&got.frames()[2][..], b"third-frame");

    // Prefix filtering is publisher-side.
    publisher.send(b"ctrl/1", msg(&[b"skip"])).unwrap();
    publisher.send(b"batch/1", msg(&[b"keep"])).unwrap();
    let (topic, _) = sub.recv_timeout(RECV).unwrap();
    assert_eq!(&topic[..], b"batch/1");
}

#[test]
fn ipc_pubsub_round_trip() {
    pubsub_roundtrip_on(&ipc_endpoint("ps"));
}

#[test]
fn tcp_pubsub_round_trip() {
    pubsub_roundtrip_on("tcp://127.0.0.1:0");
}

#[test]
fn ipc_many_messages_in_order() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("order");
    let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    for i in 0..200u32 {
        publisher.send(b"t", msg(&[&i.to_le_bytes()])).unwrap();
    }
    for i in 0..200u32 {
        let (_, m) = sub.recv_timeout(RECV).unwrap();
        assert_eq!(m.frames()[0][..], i.to_le_bytes());
    }
}

#[test]
fn ipc_hwm_backpressure_blocks_publisher() {
    // hwm=1 on BOTH ends: the subscriber's local queue must not absorb the
    // burst either.
    let ctx = Context::with_hwm(1);
    let endpoint = ipc_endpoint("hwm");
    // hwm=1: the per-peer queue holds a single message; once the kernel
    // socket buffer is full too, a blocking publisher must stall until the
    // subscriber drains.
    let publisher = PubSocket::bind_with(&ctx, &endpoint, SendPolicy::Block, Some(1)).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    const N: usize = 64;
    const CHUNK: usize = 1 << 20; // 64 MiB total >> any socket buffer
    let publisher_thread = std::thread::spawn(move || {
        let big = Multipart::single(Bytes::from(vec![7u8; CHUNK]));
        for _ in 0..N {
            publisher.send(b"t", big.clone()).unwrap();
        }
        publisher
    });
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        !publisher_thread.is_finished(),
        "publisher should be blocked by the un-drained subscriber"
    );
    // Drain: everything arrives, nothing was dropped.
    for _ in 0..N {
        let (_, m) = sub.recv_timeout(RECV).unwrap();
        assert_eq!(m.byte_len(), CHUNK);
    }
    publisher_thread.join().unwrap();
}

#[test]
fn ipc_drop_newest_drops_under_pressure() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("dropnew");
    let publisher = PubSocket::bind_with(&ctx, &endpoint, SendPolicy::DropNewest, Some(1)).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    // Saturate: with a 1-deep queue and a paused reader, a long enough
    // burst of large messages must eventually drop some sends.
    let big = Multipart::single(Bytes::from(vec![1u8; 1 << 20]));
    let mut delivered = 0usize;
    for _ in 0..64 {
        delivered += publisher.send(b"t", big.clone()).unwrap();
    }
    assert!(delivered < 64, "some messages must be dropped, not queued");
    assert!(delivered > 0, "the first message fits the empty queue");
}

#[test]
fn ipc_publisher_disconnect_closes_subscriber() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("pubgone");
    let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    publisher.send(b"t", msg(&[b"last"])).unwrap();
    let (_, m) = sub.recv_timeout(RECV).unwrap();
    assert_eq!(&m.frames()[0][..], b"last");
    drop(publisher);
    // The reader observes EOF; after the queue drains the subscriber sees
    // Closed (possibly after a few Timeout polls while the EOF
    // propagates).
    let deadline = Instant::now() + RECV;
    loop {
        match sub.recv_timeout(Duration::from_millis(50)) {
            Err(RecvError::Closed) => break,
            Err(RecvError::Timeout) if Instant::now() < deadline => continue,
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}

#[test]
fn tcp_publisher_disconnect_closes_subscriber() {
    let ctx = Context::new();
    let publisher = PubSocket::bind(&ctx, "tcp://127.0.0.1:0").unwrap();
    let endpoint = publisher.endpoint().to_string();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    drop(publisher);
    let deadline = Instant::now() + RECV;
    loop {
        match sub.recv_timeout(Duration::from_millis(50)) {
            Err(RecvError::Closed) => break,
            Err(RecvError::Timeout) if Instant::now() < deadline => continue,
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}

#[test]
fn ipc_dropped_subscriber_is_pruned() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("subgone");
    let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"");
    assert_eq!(publisher.subscriber_count(), 1);
    drop(sub);
    let deadline = Instant::now() + RECV;
    while publisher.subscriber_count() > 0 && Instant::now() < deadline {
        let _ = publisher.send(b"t", msg(&[b"x"]));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(publisher.subscriber_count(), 0);
}

#[test]
fn ipc_push_pull_fan_in() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("fanin");
    let pull = PullSocket::bind(&ctx, &endpoint).unwrap();
    let p1 = PushSocket::connect(&ctx, &endpoint);
    let p2 = PushSocket::connect(&ctx, &endpoint);
    p1.send(msg(&[b"from-1"])).unwrap();
    p2.send(msg(&[b"from-2"])).unwrap();
    let mut seen: Vec<Vec<u8>> = (0..2)
        .map(|_| pull.recv_timeout(RECV).unwrap().frames()[0].to_vec())
        .collect();
    seen.sort();
    assert_eq!(seen, vec![b"from-1".to_vec(), b"from-2".to_vec()]);
}

#[test]
fn tcp_push_connect_before_bind_buffers() {
    let ctx = Context::new();
    // Reserve a port, then free it so the pusher has a concrete target
    // that nothing listens on yet.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = format!("tcp://{}", placeholder.local_addr().unwrap());
    drop(placeholder);
    let push = PushSocket::connect(&ctx, &endpoint);
    push.send(msg(&[b"early"])).unwrap(); // queued locally
    std::thread::sleep(Duration::from_millis(50));
    let pull = PullSocket::bind(&ctx, &endpoint).unwrap();
    let m = pull.recv_timeout(RECV).unwrap();
    assert_eq!(&m.frames()[0][..], b"early");
}

#[test]
fn ipc_unsubscribe_stops_delivery() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("unsub");
    let publisher = PubSocket::bind(&ctx, &endpoint).unwrap();
    let sub = SubSocket::connect(&ctx, &endpoint);
    sub.subscribe(b"a");
    sub.subscribe(b"b");
    sub.unsubscribe(b"a");
    // The unsubscribe is fire-and-forget; the acked subscribe after it
    // orders both.
    sub.subscribe(b"c");
    publisher.send(b"a/1", msg(&[b"x"])).unwrap();
    publisher.send(b"b/1", msg(&[b"y"])).unwrap();
    let (topic, _) = sub.recv_timeout(RECV).unwrap();
    assert_eq!(&topic[..], b"b/1");
    assert!(sub.try_recv().unwrap().is_none());
}

#[test]
fn ipc_rebind_after_drop() {
    let ctx = Context::new();
    let endpoint = ipc_endpoint("rebind");
    drop(PubSocket::bind(&ctx, &endpoint).unwrap());
    let _again = PubSocket::bind(&ctx, &endpoint).unwrap();
}

#[test]
fn tcp_double_bind_rejected() {
    let ctx = Context::new();
    let first = PubSocket::bind(&ctx, "tcp://127.0.0.1:0").unwrap();
    let endpoint = first.endpoint().to_string();
    assert!(matches!(
        PubSocket::bind(&ctx, &endpoint).unwrap_err(),
        ts_socket::SendError::AddrInUse(_) | ts_socket::SendError::Io(_)
    ));
}
