//! Umbrella crate for the TensorSocket reproduction workspace.
//!
//! Re-exports the public surface of every member crate so that examples and
//! downstream users can depend on a single crate. See the individual crates
//! for detailed documentation:
//!
//! * [`tensorsocket`] — the shared data loader (the paper's contribution)
//! * [`ts_tensor`] — tensor substrate (storage, views, payloads)
//! * [`ts_socket`] — PUB/SUB + PUSH/PULL messaging over `inproc://`,
//!   `ipc://` and `tcp://` endpoints
//! * [`ts_shm`] — file-backed shared-memory payload arena for
//!   cross-process zero-copy batches
//! * [`ts_data`] — datasets, transforms, multi-worker `DataLoader`
//! * [`ts_device`] — simulated device topology and traffic accounting
//! * [`ts_staging`] — VRAM slab pool + H2D copy accounting behind a
//!   pluggable `DeviceBackend` (the producer's device staging layer)
//! * [`ts_sim`] — virtual-time cluster simulator used by the evaluation
//! * [`ts_baselines`] — NonShared / CoorDL-like / Joader-like comparators
//! * [`ts_cloud`] — cloud instance catalog and cost planner
//! * [`ts_experiments`] — the per-figure/per-table evaluation harness
//!
//! The workspace also ships `ts-top` (`src/bin/ts-top.rs`): a live
//! observability CLI that scrapes a running producer's per-stage latency
//! histograms over the control plane — see the *Observability* section
//! of the [`tensorsocket`] crate docs.

pub use tensorsocket;
pub use ts_baselines;
pub use ts_cloud;
pub use ts_data;
pub use ts_device;
pub use ts_experiments;
pub use ts_metrics;
pub use ts_shm;
pub use ts_sim;
pub use ts_socket;
pub use ts_staging;
pub use ts_tensor;
