//! `ts-top` — live observability for a running TensorSocket producer.
//!
//! Attaches to a producer's base endpoint (the same URI consumers
//! connect to, over `inproc://` is meaningless here but `ipc://` and
//! `tcp://` both work), scrapes the control-plane stats snapshot
//! periodically, and renders the per-stage latency histograms, counters
//! and gauges as a live terminal table. With `--json` it performs a
//! single scrape and prints the snapshot as JSON, for scripting and CI.
//!
//! ```text
//! ts-top [--json] [--trace <file>] [--interval <ms>] [--frames <n>] [--timeout <ms>] <endpoint>
//! ```
//!
//! `--trace <file>` scrapes the producer's batch flight recorder instead
//! and writes the last-N completed per-batch records as a Chrome
//! trace-event JSON file — open it in `chrome://tracing` or Perfetto to
//! see each batch's fetch → copy-wait → H2D → publish → announce → ack
//! (and, for in-process consumers, recv → rebuild → release) waterfall,
//! one track per stage per shard.
//!
//! The scrape is read-only: it never attaches as a consumer, never
//! joins, and leaves no state in the producer.

use std::fmt::Write as _;
use std::time::Duration;
use tensorsocket::{scrape_stats, scrape_trace, SpanKind, StatsPayload, TracePayload, TsContext};
use ts_metrics::{HistogramSnapshot, Table};

struct Args {
    endpoint: String,
    json: bool,
    trace: Option<String>,
    last: u32,
    interval: Duration,
    frames: Option<u64>,
    timeout: Duration,
}

const USAGE: &str = "usage: ts-top [--json] [--trace <file>] [--last <n>] [--interval <ms>] \
     [--frames <n>] [--timeout <ms>] <endpoint>\n\
     \n\
     Scrapes the metrics registry of the TensorSocket producer listening on\n\
     <endpoint> (e.g. ipc:///tmp/ts.sock or tcp://127.0.0.1:5555) and renders\n\
     a live stage-latency table. --json scrapes once and prints JSON.\n\
     \n\
       --json            one-shot scrape, JSON on stdout\n\
       --trace <file>    one-shot flight-recorder scrape, Chrome trace-event\n\
                         JSON written to <file> ('-' for stdout); load it in\n\
                         chrome://tracing or Perfetto\n\
       --last <n>        trace records to request (default 256, producer caps)\n\
       --interval <ms>   refresh period in live mode (default 1000)\n\
       --frames <n>      exit after n refreshes (default: run until ^C)\n\
       --timeout <ms>    per-scrape timeout (default 5000)";

fn parse_args() -> Result<Args, String> {
    let mut endpoint = None;
    let mut json = false;
    let mut trace = None;
    let mut last = 256u32;
    let mut interval = Duration::from_millis(1000);
    let mut frames = None;
    let mut timeout = Duration::from_millis(5000);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                trace = Some(v);
            }
            "--interval" | "--frames" | "--timeout" | "--last" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("{arg} expects an integer, got {v:?}"))?;
                match arg.as_str() {
                    "--interval" => interval = Duration::from_millis(n.max(1)),
                    "--frames" => frames = Some(n),
                    "--last" => last = (n.clamp(1, u32::MAX as u64)) as u32,
                    _ => timeout = Duration::from_millis(n.max(1)),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown flag {other}"))
            }
            other => {
                if endpoint.replace(other.to_string()).is_some() {
                    return Err("more than one endpoint given".into());
                }
            }
        }
    }
    Ok(Args {
        endpoint: endpoint.ok_or("missing <endpoint>")?,
        json,
        trace,
        last,
        interval,
        frames,
        timeout,
    })
}

fn us(ns: u64) -> String {
    ts_metrics::table::fmt_num(ns as f64 / 1000.0)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as a single JSON object. Hand-rolled (the
/// workspace is dependency-free); quantiles are pre-computed so
/// consumers of the JSON need no knowledge of the bucket layout.
fn to_json(stats: &StatsPayload) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"stats_version\": {},", stats.version);
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in stats.counters.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in stats.gauges().iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(name), json_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in stats.histograms.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            json_escape(name),
            h.count,
            json_f64(h.mean()),
            h.p50(),
            h.p99(),
            h.p999(),
            h.max,
        );
    }
    out.push_str("\n  }\n}");
    out
}

/// Renders the flight-recorder scrape as a Chrome trace-event JSON
/// document (the `{"traceEvents": [...]}` object form): one `ph:"X"`
/// complete event per recorded span, with the shard as the `pid` and
/// the stage as the `tid`, plus `ph:"M"` metadata events naming both.
/// Timestamps are the recorder's nanosecond offsets converted to the
/// format's microseconds, so all shards share one timeline.
/// Hand-rolled like `to_json` — the workspace is dependency-free.
fn trace_to_chrome(payload: &TracePayload) -> String {
    let mut shards: Vec<u32> = payload.records.iter().map(|r| r.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&ev);
    };
    for &shard in &shards {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{shard},\"tid\":0,\
                 \"args\":{{\"name\":\"shard {shard}\"}}}}"
            ),
        );
        for kind in SpanKind::ALL {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{shard},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    kind as u8,
                    kind.as_str()
                ),
            );
        }
    }
    for r in &payload.records {
        for &(kind, start_ns, end_ns) in &r.spans {
            let Some(k) = SpanKind::from_u8(kind) else {
                continue; // a newer producer's span kind: skip, keep the rest
            };
            let ts_us = start_ns as f64 / 1000.0;
            let dur_us = end_ns.saturating_sub(start_ns) as f64 / 1000.0;
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"epoch\":{},\"seq\":{},\
                     \"complete\":{}}}}}",
                    k.as_str(),
                    r.shard,
                    kind,
                    r.epoch,
                    r.seq,
                    r.complete
                ),
            );
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_version\":{},\
         \"scraped_at_ns\":{},\"records\":{}}}}}",
        payload.version,
        payload.now_ns,
        payload.records.len()
    );
    out
}

/// Per-interval rate of a counter between two frames, as a rendered
/// cell. Uses the producer's own monotonic snapshot stamps when both
/// frames carry them (stats v3), so the rate is immune to scrape
/// latency jitter; frames without stamps fall back to the wall
/// interval. First frame (no previous) renders a dash.
fn rate_cell(name: &str, now: u64, prev: Option<&StatsPayload>, stats: &StatsPayload) -> String {
    let Some(prev) = prev else {
        return "-".into();
    };
    let &(_, before) = match prev.counters.iter().find(|(n, _)| n == name) {
        Some(kv) => kv,
        None => return "-".into(),
    };
    let dt_ns = if prev.snapshot_ns > 0 && stats.snapshot_ns > prev.snapshot_ns {
        stats.snapshot_ns - prev.snapshot_ns
    } else {
        return "-".into();
    };
    let rate = now.saturating_sub(before) as f64 / (dt_ns as f64 / 1e9);
    ts_metrics::table::fmt_num(rate)
}

fn fmt_uptime(ns: u64) -> String {
    let s = ns / 1_000_000_000;
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// Metric families this build of ts-top knows about. Anything else came
/// from a newer producer: warned once per family on stderr, and rendered
/// (and exported in `--json`) like every other metric — pass-through,
/// never dropped.
const KNOWN_FAMILIES: &[&str] = &[
    "stage", "staging", "consumer", "producer", "watchdog", "trace", "log", "replay",
];

fn warn_unknown_families(stats: &StatsPayload, warned: &mut std::collections::HashSet<String>) {
    let gauges = stats.gauges();
    let names = stats
        .counters
        .iter()
        .map(|(n, _)| n.clone())
        .chain(gauges.iter().map(|(n, _)| n.clone()))
        .chain(stats.histograms.iter().map(|(n, _)| n.clone()));
    for name in names {
        let family = name.split('.').next().unwrap_or(&name).to_string();
        if !KNOWN_FAMILIES.contains(&family.as_str()) && warned.insert(family.clone()) {
            eprintln!(
                "ts-top: unknown metric family \"{family}\" (newer producer?) — \
                 passing it through unrendered-but-included"
            );
        }
    }
}

/// The durable-log header line, when the scraped producer keeps one:
/// per-shard retained offset range and append lag, read from the
/// `log.[s<N>.]retained_min/retained_max/lag` gauges. The inverted range
/// `min > max` is the producer's "enabled, nothing retained yet" ad.
fn log_header(stats: &StatsPayload) -> Option<String> {
    let gauges = stats.gauges();
    let get = |name: &str| gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let mut prefixes: Vec<String> = gauges
        .iter()
        .filter_map(|(n, _)| n.strip_suffix("retained_max").map(str::to_string))
        .filter(|p| p.starts_with("log."))
        .collect();
    if prefixes.is_empty() {
        return None;
    }
    prefixes.sort();
    let mut parts = Vec::new();
    for p in prefixes {
        let min = get(&format!("{p}retained_min")).unwrap_or(0.0);
        let max = get(&format!("{p}retained_max")).unwrap_or(0.0);
        let lag = get(&format!("{p}lag")).unwrap_or(0.0);
        let shard = p.trim_start_matches("log.").trim_end_matches('.');
        let label = if shard.is_empty() {
            String::new()
        } else {
            format!("{shard} ")
        };
        if min > max {
            parts.push(format!("{label}retained (empty) lag {lag:.0}"));
        } else {
            parts.push(format!("{label}retained [{min:.0}, {max:.0}] lag {lag:.0}"));
        }
    }
    Some(format!("log: {}", parts.join(" | ")))
}

fn render_tables(endpoint: &str, stats: &StatsPayload, prev: Option<&StatsPayload>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ts-top — {endpoint} (stats v{}, up {})",
        stats.version,
        fmt_uptime(stats.uptime_ns)
    );
    if !stats.verdict.is_empty() {
        let _ = writeln!(out, "watchdog: {}", stats.verdict);
    }
    if let Some(line) = log_header(stats) {
        let _ = writeln!(out, "{line}");
    }
    out.push('\n');
    let mut lat = Table::new(
        "Stage latency (us)",
        &["stage", "count", "p50", "p99", "p99.9", "max", "mean"],
    );
    for (name, h) in &stats.histograms {
        let h: &HistogramSnapshot = h;
        lat.row(&[
            name.clone(),
            h.count.to_string(),
            us(h.p50()),
            us(h.p99()),
            us(h.p999()),
            us(h.max),
            ts_metrics::table::fmt_num(h.mean() / 1000.0),
        ]);
    }
    out.push_str(&lat.render());
    out.push('\n');
    // Live mode leads with what changed this interval, not lifetime
    // totals: a stalled pipeline shows 0/s immediately instead of a
    // slowly diluting cumulative count.
    let mut counters = Table::new("Counters", &["counter", "per/s", "total"]);
    for (name, v) in &stats.counters {
        counters.row(&[
            name.clone(),
            rate_cell(name, *v, prev, stats),
            v.to_string(),
        ]);
    }
    out.push_str(&counters.render());
    out.push('\n');
    let gauges_list = stats.gauges();
    if !gauges_list.is_empty() {
        let mut gauges = Table::new("Gauges", &["gauge", "value"]);
        for (name, v) in &gauges_list {
            gauges.row(&[name.clone(), ts_metrics::table::fmt_num(*v)]);
        }
        out.push_str(&gauges.render());
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ts-top: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let ctx = TsContext::host_only();
    if let Some(path) = &args.trace {
        match scrape_trace(&ctx, &args.endpoint, args.last, args.timeout) {
            Ok(payload) => {
                let doc = trace_to_chrome(&payload);
                if path == "-" {
                    println!("{doc}");
                } else if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("ts-top: writing {path}: {e}");
                    std::process::exit(1);
                } else {
                    eprintln!(
                        "ts-top: wrote {} trace record(s) to {path} — open in \
                         chrome://tracing or https://ui.perfetto.dev",
                        payload.records.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("ts-top: trace scrape failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut warned_families = std::collections::HashSet::new();
    if args.json {
        match scrape_stats(&ctx, &args.endpoint, args.timeout) {
            Ok(stats) => {
                warn_unknown_families(&stats, &mut warned_families);
                println!("{}", to_json(&stats));
            }
            Err(e) => {
                eprintln!("ts-top: scrape failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut frame = 0u64;
    let mut prev: Option<StatsPayload> = None;
    loop {
        match scrape_stats(&ctx, &args.endpoint, args.timeout) {
            Ok(stats) => {
                warn_unknown_families(&stats, &mut warned_families);
                // Clear screen + home, like top(1).
                print!(
                    "\x1b[2J\x1b[H{}",
                    render_tables(&args.endpoint, &stats, prev.as_ref())
                );
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = Some(stats);
            }
            Err(e) => {
                eprintln!("ts-top: scrape failed: {e}");
                std::process::exit(1);
            }
        }
        frame += 1;
        if let Some(max) = args.frames {
            if frame >= max {
                return;
            }
        }
        std::thread::sleep(args.interval);
    }
}
