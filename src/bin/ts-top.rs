//! `ts-top` — live observability for a running TensorSocket producer.
//!
//! Attaches to a producer's base endpoint (the same URI consumers
//! connect to, over `inproc://` is meaningless here but `ipc://` and
//! `tcp://` both work), scrapes the control-plane stats snapshot
//! periodically, and renders the per-stage latency histograms, counters
//! and gauges as a live terminal table. With `--json` it performs a
//! single scrape and prints the snapshot as JSON, for scripting and CI.
//!
//! ```text
//! ts-top [--json] [--interval <ms>] [--frames <n>] [--timeout <ms>] <endpoint>
//! ```
//!
//! The scrape is read-only: it never attaches as a consumer, never
//! joins, and leaves no state in the producer.

use std::fmt::Write as _;
use std::time::Duration;
use tensorsocket::{scrape_stats, StatsPayload, TsContext};
use ts_metrics::{HistogramSnapshot, Table};

struct Args {
    endpoint: String,
    json: bool,
    interval: Duration,
    frames: Option<u64>,
    timeout: Duration,
}

const USAGE: &str =
    "usage: ts-top [--json] [--interval <ms>] [--frames <n>] [--timeout <ms>] <endpoint>\n\
     \n\
     Scrapes the metrics registry of the TensorSocket producer listening on\n\
     <endpoint> (e.g. ipc:///tmp/ts.sock or tcp://127.0.0.1:5555) and renders\n\
     a live stage-latency table. --json scrapes once and prints JSON.\n\
     \n\
       --json            one-shot scrape, JSON on stdout\n\
       --interval <ms>   refresh period in live mode (default 1000)\n\
       --frames <n>      exit after n refreshes (default: run until ^C)\n\
       --timeout <ms>    per-scrape timeout (default 5000)";

fn parse_args() -> Result<Args, String> {
    let mut endpoint = None;
    let mut json = false;
    let mut interval = Duration::from_millis(1000);
    let mut frames = None;
    let mut timeout = Duration::from_millis(5000);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--interval" | "--frames" | "--timeout" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("{arg} expects an integer, got {v:?}"))?;
                match arg.as_str() {
                    "--interval" => interval = Duration::from_millis(n.max(1)),
                    "--frames" => frames = Some(n),
                    _ => timeout = Duration::from_millis(n.max(1)),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if endpoint.replace(other.to_string()).is_some() {
                    return Err("more than one endpoint given".into());
                }
            }
        }
    }
    Ok(Args {
        endpoint: endpoint.ok_or("missing <endpoint>")?,
        json,
        interval,
        frames,
        timeout,
    })
}

fn us(ns: u64) -> String {
    ts_metrics::table::fmt_num(ns as f64 / 1000.0)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as a single JSON object. Hand-rolled (the
/// workspace is dependency-free); quantiles are pre-computed so
/// consumers of the JSON need no knowledge of the bucket layout.
fn to_json(stats: &StatsPayload) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"stats_version\": {},", stats.version);
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in stats.counters.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in stats.gauges().iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(name), json_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in stats.histograms.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            json_escape(name),
            h.count,
            json_f64(h.mean()),
            h.p50(),
            h.p99(),
            h.p999(),
            h.max,
        );
    }
    out.push_str("\n  }\n}");
    out
}

fn render_tables(endpoint: &str, stats: &StatsPayload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ts-top — {endpoint} (stats v{})\n", stats.version);
    let mut lat = Table::new(
        "Stage latency (us)",
        &["stage", "count", "p50", "p99", "p99.9", "max", "mean"],
    );
    for (name, h) in &stats.histograms {
        let h: &HistogramSnapshot = h;
        lat.row(&[
            name.clone(),
            h.count.to_string(),
            us(h.p50()),
            us(h.p99()),
            us(h.p999()),
            us(h.max),
            ts_metrics::table::fmt_num(h.mean() / 1000.0),
        ]);
    }
    out.push_str(&lat.render());
    out.push('\n');
    let mut counters = Table::new("Counters", &["counter", "value"]);
    for (name, v) in &stats.counters {
        counters.row(&[name.clone(), v.to_string()]);
    }
    out.push_str(&counters.render());
    out.push('\n');
    let gauges_list = stats.gauges();
    if !gauges_list.is_empty() {
        let mut gauges = Table::new("Gauges", &["gauge", "value"]);
        for (name, v) in &gauges_list {
            gauges.row(&[name.clone(), ts_metrics::table::fmt_num(*v)]);
        }
        out.push_str(&gauges.render());
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ts-top: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let ctx = TsContext::host_only();
    if args.json {
        match scrape_stats(&ctx, &args.endpoint, args.timeout) {
            Ok(stats) => println!("{}", to_json(&stats)),
            Err(e) => {
                eprintln!("ts-top: scrape failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut frame = 0u64;
    loop {
        match scrape_stats(&ctx, &args.endpoint, args.timeout) {
            Ok(stats) => {
                // Clear screen + home, like top(1).
                print!("\x1b[2J\x1b[H{}", render_tables(&args.endpoint, &stats));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("ts-top: scrape failed: {e}");
                std::process::exit(1);
            }
        }
        frame += 1;
        if let Some(max) = args.frames {
            if frame >= max {
                return;
            }
        }
        std::thread::sleep(args.interval);
    }
}
