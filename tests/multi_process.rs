//! The paper's headline scenario as a real OS-process topology: one
//! producer process (this test) + two consumer processes (fork/exec of
//! this same test binary) collocated on one machine, talking over
//! `ipc://` sockets with batch bytes in a shared-memory arena.
//!
//! Verifies the acceptance criteria of the transport subsystem:
//!
//! * both consumer processes receive identical batch sequences (for every
//!   epoch both participated in from the start);
//! * payload bytes are read from the shared-memory arena, not the socket —
//!   every rebuilt tensor in the consumers is backed by an arena mapping
//!   (`is_shared_memory`), and the consumers' local registries are empty;
//! * releases are acked back so the arena recycles slots: a deliberately
//!   small arena survives `epochs × batches` allocations, and is fully
//!   free after the run.
//!
//! The producer runs through the legacy (`#[deprecated]`) shim while the
//! consumer processes attach with `Consumer::builder().connect(endpoint)`
//! and **nothing else** — no arena path, no configuration: the attach
//! handshake carries the arena advertisement, proving the new facade
//! interoperates with every legacy-spawned topology.
#![allow(deprecated)]

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, ProducerConfig, TensorProducer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::Tensor;

const BATCHES_PER_EPOCH: usize = 8;
const BATCH_SIZE: usize = 4;
const EPOCHS: u64 = 3;

/// `label == index`, field encodes the index: batches are deterministic
/// and checksummable across processes.
struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        4
    }

    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(
            &[raw.index as f32, raw.index as f32 * 2.0],
            &[2],
            DeviceId::Cpu,
        )?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "mp-index"
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a, stable across processes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Consumer-process body: attach with NOTHING but the endpoint URI — the
/// handshake advertises the arena, which the builder maps before joining
/// — consume everything, write one line per batch to the result file.
fn run_consumer() {
    let endpoint = std::env::var("TS_MP_ENDPOINT").expect("TS_MP_ENDPOINT");
    let arena_path = std::env::var("TS_MP_ARENA").expect("TS_MP_ARENA");
    let out_path = std::env::var("TS_MP_OUT").expect("TS_MP_OUT");

    let mut consumer = Consumer::builder()
        .recv_timeout(Duration::from_secs(30))
        .connect(&endpoint)
        .expect("consumer connect");
    // The handshake advertised the arena this topology shares.
    let ad = consumer
        .welcome()
        .arena
        .clone()
        .expect("arena must be advertised");
    assert_eq!(
        ad.path, arena_path,
        "advertised path matches the producer's"
    );
    let joined_epoch = consumer.joined_epoch();

    let mut out = std::fs::File::create(&out_path).expect("result file");
    writeln!(out, "joined {joined_epoch}").unwrap();
    let mut consumed = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        // The whole point: payload bytes came from the mapped arena, not
        // the socket.
        assert!(
            batch.fields[0].storage().is_shared_memory(),
            "field bytes must be arena-backed"
        );
        assert!(
            batch.labels.storage().is_shared_memory(),
            "label bytes must be arena-backed"
        );
        let field_sum = checksum(&batch.fields[0].gather_bytes());
        let label_sum = checksum(&batch.labels.gather_bytes());
        writeln!(
            out,
            "batch {} {} {} {:016x} {:016x}",
            batch.epoch, batch.seq, batch.index_in_epoch, field_sum, label_sum
        )
        .unwrap();
        consumed += 1;
    }
    assert_eq!(
        consumer.stop_reason(),
        Some(tensorsocket::runtime::consumer::StopReason::End),
        "consumer must stop on a clean End"
    );
    assert!(consumed > 0, "consumed nothing");
    writeln!(out, "done {consumed}").unwrap();
}

#[derive(Debug, PartialEq, Eq, Clone)]
struct Line {
    seq: u64,
    index: u64,
    field_sum: String,
    label_sum: String,
}

fn parse_results(path: &std::path::Path) -> (u64, BTreeMap<u64, Vec<Line>>) {
    let text = std::fs::read_to_string(path).expect("consumer results");
    let mut joined = 0u64;
    let mut by_epoch: BTreeMap<u64, Vec<Line>> = BTreeMap::new();
    let mut done = false;
    for line in text.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["joined", e] => joined = e.parse().unwrap(),
            ["batch", epoch, seq, index, fsum, lsum] => {
                by_epoch
                    .entry(epoch.parse().unwrap())
                    .or_default()
                    .push(Line {
                        seq: seq.parse().unwrap(),
                        index: index.parse().unwrap(),
                        field_sum: fsum.to_string(),
                        label_sum: lsum.to_string(),
                    });
            }
            ["done", _] => done = true,
            _ => panic!("unparsable result line: {line}"),
        }
    }
    assert!(done, "consumer did not finish cleanly: {text}");
    (joined, by_epoch)
}

#[test]
fn multi_process_ipc_shared_arena() {
    if std::env::var("TS_MP_ROLE").as_deref() == Ok("consumer") {
        run_consumer();
        return;
    }

    let tag = std::process::id();
    let tmp = std::env::temp_dir();
    let endpoint = format!("ipc://{}", tmp.join(format!("ts-mp-{tag}.sock")).display());
    let arena_path = tmp.join(format!("ts-mp-{tag}.arena"));
    let out_paths: Vec<_> = (0..2)
        .map(|i| tmp.join(format!("ts-mp-{tag}-consumer{i}.txt")))
        .collect();

    // Deliberately small arena: 3 epochs x 8 announces x 2 storages = 48
    // allocations must recycle through 12 slots, proving acked releases
    // keep it bounded.
    let ctx = TsContext::host_only();
    let arena = ctx
        .create_arena(&arena_path, 12, 4096)
        .expect("create arena");

    let loader = DataLoader::new(
        Arc::new(IndexDataset {
            len: BATCHES_PER_EPOCH * BATCH_SIZE,
        }),
        DataLoaderConfig {
            batch_size: BATCH_SIZE,
            num_workers: 0,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    );
    let producer = TensorProducer::spawn(
        loader,
        &ctx,
        ProducerConfig {
            endpoint: endpoint.clone(),
            epochs: EPOCHS,
            // Wide join window so the second process usually rubberbands
            // into epoch 0; if it still misses, it waits for epoch 1 and
            // the comparison below starts there.
            rubberband_cutoff: 0.5,
            heartbeat_timeout: Duration::from_secs(5),
            first_consumer_timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    )
    .expect("spawn producer");

    let exe = std::env::current_exe().expect("test binary path");
    let children: Vec<_> = out_paths
        .iter()
        .map(|out| {
            std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "multi_process_ipc_shared_arena",
                    "--test-threads=1",
                ])
                .env("TS_MP_ROLE", "consumer")
                .env("TS_MP_ENDPOINT", &endpoint)
                .env("TS_MP_ARENA", &arena_path)
                .env("TS_MP_OUT", out)
                .spawn()
                .expect("spawn consumer process")
        })
        .collect();

    for mut child in children {
        let status = child.wait().expect("wait consumer");
        assert!(status.success(), "consumer process failed: {status}");
    }
    let stats = producer.join().expect("producer join");
    assert_eq!(stats.epochs_completed, EPOCHS);
    assert_eq!(stats.peak_consumers, 2, "both processes were admitted");

    // Releases were acked back from both processes: every slot is free and
    // nothing is left registered.
    assert_eq!(arena.slots_in_use(), 0, "arena must fully drain");
    assert!(ctx.registry.is_empty(), "registry must fully drain");

    // Identical batch sequences for every epoch both consumers saw from
    // the start.
    let (joined_a, results_a) = parse_results(&out_paths[0]);
    let (joined_b, results_b) = parse_results(&out_paths[1]);
    let first_common = joined_a.max(joined_b);
    assert!(
        first_common < EPOCHS,
        "no epoch was shared by both consumers (joined {joined_a}/{joined_b})"
    );
    for epoch in first_common..EPOCHS {
        let a = results_a.get(&epoch).expect("consumer 0 missing epoch");
        let b = results_b.get(&epoch).expect("consumer 1 missing epoch");
        assert_eq!(
            a.len(),
            BATCHES_PER_EPOCH,
            "epoch {epoch} incomplete for consumer 0"
        );
        assert_eq!(a, b, "sequences diverge in epoch {epoch}");
    }
    for path in &out_paths {
        let _ = std::fs::remove_file(path);
    }
}
