//! Attach-handshake failure modes, under both `ipc://` and `tcp://`:
//! every mismatch must surface **promptly** as its typed
//! [`HandshakeError`] — never as a hang, and never as a consumer silently
//! training on the wrong topology.
//!
//! * **version skew** — a consumer speaking a future handshake version
//!   gets [`HandshakeError::Version`] carrying both versions;
//! * **`shards` override mismatch** — a consumer that insists on a shard
//!   count the producer does not advertise gets
//!   [`HandshakeError::Topology`];
//! * **unopenable arena** — the producer advertises a shared-memory
//!   arena whose backing file the consumer cannot map (stale path,
//!   different host). A consumer pinned to shm payloads gets
//!   [`HandshakeError::ArenaMissing`]; an unpinned consumer negotiates
//!   down to streamed payloads and still attaches (the remote-host
//!   shape);
//! * **ungranted payload mode** — a consumer forcing streamed payloads
//!   from a flexible-batch producer (which only grants shm) gets
//!   [`HandshakeError::Mode`] with the producer's grant mask.
//!
//! Each case is timeout-guarded: the error must arrive well inside the
//! guard, proving the failure path is a fast typed reply, not a timeout.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tensorsocket::{
    Consumer, HandshakeError, PayloadMode, Producer, ProducerConfig, TsError, HANDSHAKE_VERSION,
};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};

const GUARD: Duration = Duration::from_secs(20);

fn loader(shards: usize) -> Vec<DataLoader> {
    DataLoader::sharded(
        Arc::new(SyntheticImageDataset::new(64, 8, 8, 3).with_encoded_len(256)),
        DataLoaderConfig {
            batch_size: 4,
            num_workers: 0,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
        shards,
    )
}

fn producer_cfg(endpoint: &str) -> ProducerConfig {
    ProducerConfig {
        endpoint: endpoint.to_string(),
        epochs: 1,
        heartbeat_timeout: Duration::from_secs(2),
        first_consumer_timeout: Some(Duration::from_secs(30)),
        ..Default::default()
    }
}

/// One `(scheme-tag, endpoint)` per transport under test. `port_slot`
/// spaces tcp tests apart (each sharded topology claims several
/// consecutive ports).
fn endpoints(tag: &str, port_slot: u16) -> Vec<(&'static str, String)> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    vec![
        (
            "ipc",
            format!(
                "ipc://{}",
                tmp.join(format!("ts-hs-{tag}-{pid}.sock")).display()
            ),
        ),
        (
            "tcp",
            format!("tcp://127.0.0.1:{}", 43_800 + port_slot * 16),
        ),
    ]
}

/// Runs `connect` under the hang guard, returning the typed error and
/// how long it took to surface.
fn expect_error(connect: impl FnOnce() -> tensorsocket::Result<Consumer>) -> (TsError, Duration) {
    let started = Instant::now();
    let err = connect().expect_err("handshake must fail");
    let elapsed = started.elapsed();
    assert!(
        elapsed < GUARD,
        "typed error took {elapsed:?}; the failure path must not degenerate into a timeout"
    );
    (err, elapsed)
}

#[test]
fn version_skew_yields_typed_error_promptly() {
    for (scheme, ep) in endpoints("ver", 0) {
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .spawn(loader(1).remove(0))
            .expect("spawn producer");
        let (err, _) = expect_error(|| {
            Consumer::builder()
                .hello_version(HANDSHAKE_VERSION + 41)
                .handshake_timeout(GUARD)
                .connect(&ep)
        });
        assert_eq!(
            err,
            TsError::Handshake(HandshakeError::Version {
                ours: HANDSHAKE_VERSION + 41,
                theirs: HANDSHAKE_VERSION,
            }),
            "{scheme}: wrong error"
        );
        producer.abort();
        producer.join().expect("producer join");
    }
}

#[test]
fn shards_override_mismatch_yields_typed_error_promptly() {
    for (scheme, ep) in endpoints("topo", 1) {
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .spawn_sharded(loader(2))
            .expect("spawn sharded producer");
        let (err, _) = expect_error(|| {
            Consumer::builder()
                .shards(5)
                .handshake_timeout(GUARD)
                .connect(&ep)
        });
        assert_eq!(
            err,
            TsError::Handshake(HandshakeError::Topology {
                requested: 5,
                advertised: 2,
            }),
            "{scheme}: wrong error"
        );
        producer.abort();
        producer.join().expect("producer join");
    }
}

#[test]
fn unopenable_arena_yields_typed_error_promptly() {
    for (scheme, ep) in endpoints("arena", 2) {
        let arena_path =
            std::env::temp_dir().join(format!("ts-hs-arena-{scheme}-{}.arena", std::process::id()));
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .arena(&arena_path)
            .spawn(loader(1).remove(0))
            .expect("spawn producer with arena");
        // The producer keeps its mapping; the *path* disappears, so a
        // late-coming consumer cannot open what the WELCOME advertises —
        // the cross-host / stale-path failure shape. Pinning the payload
        // mode disables the negotiated fall-back to streaming, so the
        // typed error must surface.
        std::fs::remove_file(&arena_path).expect("unlink arena file");
        let (err, _) = expect_error(|| {
            Consumer::builder()
                .payload_mode(PayloadMode::Shm)
                .handshake_timeout(GUARD)
                .connect(&ep)
        });
        match err {
            TsError::Handshake(HandshakeError::ArenaMissing { path, reason }) => {
                assert_eq!(path, arena_path.display().to_string(), "{scheme}");
                assert!(!reason.is_empty(), "{scheme}: reason must say why");
            }
            other => panic!("{scheme}: expected ArenaMissing, got {other:?}"),
        }
        producer.abort();
        producer.join().expect("producer join");
    }
}

#[test]
fn unopenable_arena_falls_back_to_streamed_payloads() {
    // The same stale-path shape as above, but the consumer leaves the
    // payload mode unpinned: the v2 handshake grants streaming, so the
    // attach succeeds in streamed mode and the epoch still delivers.
    for (scheme, ep) in endpoints("fallback", 4) {
        let arena_path = std::env::temp_dir().join(format!(
            "ts-hs-fallback-{scheme}-{}.arena",
            std::process::id()
        ));
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .arena(&arena_path)
            .spawn(loader(1).remove(0))
            .expect("spawn producer with arena");
        std::fs::remove_file(&arena_path).expect("unlink arena file");
        let mut consumer = Consumer::builder()
            .handshake_timeout(GUARD)
            .recv_timeout(Duration::from_secs(10))
            .heartbeat_interval(Duration::from_millis(50))
            .connect(&ep)
            .expect("unpinned consumer negotiates streaming");
        assert_eq!(
            consumer.payload_mode(),
            PayloadMode::Stream,
            "{scheme}: fall-back must land in streamed mode"
        );
        let mut batches = 0;
        for b in consumer.by_ref() {
            b.expect("clean streamed batch");
            batches += 1;
        }
        assert_eq!(batches, 16, "{scheme}: full epoch in streamed mode");
        producer.join().expect("producer join");
    }
}

#[test]
fn forced_streaming_from_flex_producer_yields_mode_error() {
    // Flexible producers re-slice shm tensors per consumer and therefore
    // grant only shm payloads; a consumer *forcing* streamed payloads
    // must get the typed grant-mask error instead of a hang.
    for (scheme, ep) in endpoints("mode", 5) {
        let mut cfg = producer_cfg(&ep);
        cfg.flexible = Some(tensorsocket::FlexibleConfig::new(8));
        let producer = Producer::builder()
            .config(cfg)
            .spawn(loader(1).remove(0))
            .expect("spawn flexible producer");
        let (err, _) = expect_error(|| {
            Consumer::builder()
                .payload_mode(PayloadMode::Stream)
                .batch_size(4)
                .handshake_timeout(GUARD)
                .connect(&ep)
        });
        match err {
            TsError::Handshake(HandshakeError::Mode { requested, granted }) => {
                assert_eq!(requested, PayloadMode::Stream, "{scheme}");
                assert_eq!(granted, tensorsocket::caps::SHM, "{scheme}");
            }
            other => panic!("{scheme}: expected Mode error, got {other:?}"),
        }
        producer.abort();
        producer.join().expect("producer join");
    }
}

#[test]
fn v1_consumer_attaches_to_a_v2_producer_and_streams() {
    // Mixed-version fleet, the compat direction that matters in a
    // rolling upgrade: a consumer still speaking handshake v1 hellos a
    // v2 producer. The producer answers in the v1 dialect (no trailing
    // v2 extensions), the consumer lands on the v1 default payload mode
    // (shm) and streams the full epoch.
    for (scheme, ep) in endpoints("v1", 6) {
        let arena_path =
            std::env::temp_dir().join(format!("ts-hs-v1-{scheme}-{}.arena", std::process::id()));
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .arena(&arena_path)
            .spawn(loader(1).remove(0))
            .expect("spawn v2 producer");
        let mut consumer = Consumer::builder()
            .hello_version(HANDSHAKE_VERSION - 1)
            .handshake_timeout(GUARD)
            .recv_timeout(Duration::from_secs(10))
            .heartbeat_interval(Duration::from_millis(50))
            .connect(&ep)
            .expect("v1 consumer attaches");
        assert_eq!(
            consumer.payload_mode(),
            PayloadMode::Shm,
            "{scheme}: v1 welcomes carry no grant mask — the consumer \
             must land on the v1 default"
        );
        let mut batches = 0;
        for b in consumer.by_ref() {
            b.expect("clean v1 stream");
            batches += 1;
        }
        assert_eq!(batches, 16, "{scheme}: full epoch in the v1 dialect");
        producer.join().expect("producer join");
    }
}

#[test]
fn matched_override_still_attaches_everywhere() {
    // The positive control for the failure cases above: the explicit
    // override that *matches* the advertisement attaches and streams.
    // The consumer's context is separate from the producer's, so payload
    // bytes must travel through an (auto-sized, handshake-advertised)
    // arena.
    for (scheme, ep) in endpoints("ok", 3) {
        let arena_path =
            std::env::temp_dir().join(format!("ts-hs-ok-{scheme}-{}.arena", std::process::id()));
        let producer = Producer::builder()
            .config(producer_cfg(&ep))
            .arena(&arena_path)
            .spawn_sharded(loader(2))
            .expect("spawn sharded producer");
        let mut consumer = Consumer::builder()
            .shards(2)
            .handshake_timeout(GUARD)
            .recv_timeout(Duration::from_secs(10))
            .heartbeat_interval(Duration::from_millis(50))
            .connect(&ep)
            .expect("matched override attaches");
        assert_eq!(consumer.num_shards(), 2, "{scheme}");
        let mut batches = 0;
        for b in consumer.by_ref() {
            b.expect("clean stream");
            batches += 1;
        }
        assert_eq!(batches, 16, "{scheme}: full epoch over both shards");
        producer.join().expect("producer join");
    }
}
