//! Smoke + shape tests over the whole evaluation harness: every artifact
//! runs, produces non-empty tables, and preserves the paper's headline
//! claims.

use ts_experiments::{all_experiments, run_by_id};

#[test]
fn every_artifact_renders_nonempty_tables() {
    for (id, title, runner) in all_experiments() {
        let report = runner();
        assert_eq!(report.id, id);
        assert!(!report.tables.is_empty(), "{id} has no tables");
        for t in &report.tables {
            assert!(t.num_rows() > 0, "{id}/{title}: empty table");
        }
        let text = report.render();
        assert!(text.contains(id));
        let md = report.render_markdown();
        assert!(md.contains("|"), "{id}: markdown table missing");
    }
}

#[test]
fn run_by_id_matches_registry() {
    assert!(run_by_id("table3").is_some());
    assert!(run_by_id("nope").is_none());
}

#[test]
fn headline_throughput_doubling_holds() {
    // "increases training throughput by up to 100%" (abstract): the
    // MobileNet S 4-way case roughly doubles.
    use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
    let ns = ts_experiments::fig8::run_config("MobileNet S", nonshared_strategy());
    let ts = ts_experiments::fig8::run_config("MobileNet S", tensorsocket_strategy(0));
    let speedup = ts.mean_samples_per_s() / ns.mean_samples_per_s();
    assert!(speedup > 1.7, "headline doubling regressed: {speedup}");
}

#[test]
fn headline_cost_halving_holds() {
    // "achieves cost savings of 50% by reducing the hardware resource
    // needs on the CPU side" (abstract), via the Fig 11/13 g5 cases.
    use ts_cloud::{savings_with_sharing, Requirement};
    let s = savings_with_sharing(
        Requirement {
            vcpus: 0,
            gpus: 1,
            vram_gb: 24,
            gpu_model: Some("A10G"),
        },
        32,
        8,
    )
    .unwrap();
    assert!(s.saving_fraction > 0.45, "{}", s.saving_fraction);
}

#[test]
fn headline_beats_or_matches_both_comparators() {
    // "either achieves higher or matches their throughput while requiring
    // fewer CPU resources" (abstract).
    use ts_baselines::{coordl_strategy, joader_strategy, tensorsocket_strategy};
    // vs CoorDL at 4-way (Fig 14)
    let ts = ts_experiments::fig14::run_config(4, tensorsocket_strategy(0));
    let co = ts_experiments::fig14::run_config(4, coordl_strategy());
    assert!(ts.mean_samples_per_s() >= co.mean_samples_per_s() * 0.97);
    assert!(ts.cpu_busy_cores < co.cpu_busy_cores);
    // vs Joader at 4-way (Fig 15)
    let ts15 = ts_experiments::fig15::run_config(4, tensorsocket_strategy(0));
    let jd15 = ts_experiments::fig15::run_config(4, joader_strategy());
    assert!(ts15.mean_samples_per_s() > jd15.mean_samples_per_s());
}

#[test]
fn simulator_is_deterministic_across_full_experiments() {
    let a = ts_experiments::fig12::run_config(2, true);
    let b = ts_experiments::fig12::run_config(2, true);
    assert_eq!(a.duration_s, b.duration_s);
    assert_eq!(a.cpu_busy_cores, b.cpu_busy_cores);
    for (x, y) in a.trainers.iter().zip(&b.trainers) {
        assert_eq!(x.samples, y.samples);
        assert_eq!(x.samples_per_s, y.samples_per_s);
    }
}

#[test]
fn infeasible_scenario_becomes_feasible_with_sharing() {
    // "enables scenarios that are infeasible without data sharing":
    // 4-way CLMR on the 8-vCPU instance runs at <30% of GPU speed without
    // sharing and at full speed with it (Fig 11).
    use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
    use ts_sim::GpuSharing;
    let ns = ts_experiments::fig11::run_config(8, GpuSharing::Mps, nonshared_strategy());
    let ts = ts_experiments::fig11::run_config(8, GpuSharing::Mps, tensorsocket_strategy(0));
    assert!(ts.mean_samples_per_s() > 3.0 * ns.mean_samples_per_s());
}
