//! Cross-crate integration: full TensorSocket stack over real threads —
//! synthetic dataset → codec decode → augmentation → multi-worker loader →
//! producer → payload sharing → consumers, with GPU staging and traffic
//! accounting.
//!
//! Deliberately exercises the deprecated `TensorProducer::spawn` /
//! `TensorConsumer::connect` shims end to end: they must keep delegating
//! to the same engine the `Producer`/`Consumer` builders drive.
#![allow(deprecated)]

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{ConsumerConfig, ProducerConfig, TensorConsumer, TensorProducer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, Pipeline, RandomCrop, SyntheticImageDataset};
use ts_device::traffic::Channel;
use ts_device::DeviceId;
use ts_tensor::ops;

fn image_loader(n: usize, batch: usize, workers: usize) -> DataLoader {
    let dataset = Arc::new(SyntheticImageDataset::new(n, 40, 40, 77).with_encoded_len(2_048));
    let pipeline = Arc::new(Pipeline::new(5).with(RandomCrop {
        out_h: 32,
        out_w: 32,
    }));
    DataLoader::with_pipeline(
        dataset,
        pipeline,
        DataLoaderConfig {
            batch_size: batch,
            num_workers: workers,
            shuffle: true,
            seed: 13,
            ..Default::default()
        },
    )
}

fn producer_cfg(endpoint: &str) -> ProducerConfig {
    ProducerConfig {
        endpoint: endpoint.to_string(),
        epochs: 2,
        rubberband_cutoff: 1.0,
        poll_interval: Duration::from_micros(200),
        ..Default::default()
    }
}

fn consumer_cfg(endpoint: &str) -> ConsumerConfig {
    ConsumerConfig {
        endpoint: endpoint.to_string(),
        heartbeat_interval: Duration::from_millis(50),
        recv_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

#[test]
fn three_consumers_train_on_identical_augmented_batches() {
    let ctx = TsContext::host_only();
    let ep = "inproc://e2e-1";
    let producer = TensorProducer::spawn(image_loader(96, 8, 3), &ctx, producer_cfg(ep)).unwrap();
    // connect all three before any consumption so nobody misses epoch 0
    let consumers: Vec<TensorConsumer> = (0..3)
        .map(|_| TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap())
        .collect();
    let handles: Vec<_> = consumers
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut checksums = Vec::new();
                for batch in c.by_ref() {
                    assert_eq!(batch.fields[0].shape(), &[8, 3, 32, 32]);
                    checksums.push(ops::checksum(&batch.fields[0]));
                }
                assert_eq!(
                    c.stop_reason(),
                    Some(tensorsocket::runtime::consumer::StopReason::End)
                );
                checksums
            })
        })
        .collect();
    let sums: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = producer.join().unwrap();
    // 2 epochs × 12 batches each
    assert_eq!(sums[0].len(), 24);
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[1], sums[2]);
    // per-epoch shuffling: epoch 0 and epoch 1 batches differ
    assert_ne!(sums[0][..12], sums[0][12..]);
    assert_eq!(stats.epochs_completed, 2);
    assert!(ctx.registry.is_empty());
}

#[test]
fn gpu_staged_pipeline_accounts_pcie_and_releases_vram() {
    let ctx = TsContext::with_gpus(2, 8 << 30, true);
    let ep = "inproc://e2e-2";
    let mut cfg = producer_cfg(ep);
    cfg.epochs = 1;
    cfg.device = DeviceId::Gpu(0);
    let producer = TensorProducer::spawn(image_loader(64, 8, 2), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut batches = 0u64;
    for batch in consumer.by_ref() {
        assert_eq!(batch.fields[0].device(), DeviceId::Gpu(0));
        assert!(batch.fields[0].is_contiguous());
        batches += 1;
    }
    assert_eq!(batches, 8);
    let stats = producer.join().unwrap();
    // image field: 8×3×32×32 u8 = 24576 B; labels 8×8 B; per batch
    let per_batch = (8 * 3 * 32 * 32 + 8 * 8) as u64;
    assert_eq!(stats.bytes_staged, 8 * per_batch);
    assert_eq!(ctx.devices.traffic().bytes(Channel::Pcie(0)), 8 * per_batch);
    assert_eq!(ctx.devices.memory(DeviceId::Gpu(0)).unwrap().in_use(), 0);
}

#[test]
fn two_independent_sockets_coexist_in_one_context() {
    let ctx = TsContext::host_only();
    let p1 =
        TensorProducer::spawn(image_loader(32, 8, 2), &ctx, producer_cfg("inproc://a")).unwrap();
    let p2 =
        TensorProducer::spawn(image_loader(48, 8, 2), &ctx, producer_cfg("inproc://b")).unwrap();
    let c1 = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            TensorConsumer::connect(&ctx, consumer_cfg("inproc://a"))
                .unwrap()
                .count()
        })
    };
    let c2 = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            TensorConsumer::connect(&ctx, consumer_cfg("inproc://b"))
                .unwrap()
                .count()
        })
    };
    assert_eq!(c1.join().unwrap(), 8); // 2 epochs × 4 batches
    assert_eq!(c2.join().unwrap(), 12); // 2 epochs × 6 batches
    p1.join().unwrap();
    p2.join().unwrap();
}

#[test]
fn consumers_with_different_speeds_see_every_batch() {
    let ctx = TsContext::host_only();
    let ep = "inproc://e2e-3";
    let producer = TensorProducer::spawn(image_loader(64, 8, 2), &ctx, producer_cfg(ep)).unwrap();
    let mut fast_c = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut slow_c = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let fast = std::thread::spawn(move || {
        let mut seqs = BTreeSet::new();
        for b in fast_c.by_ref() {
            seqs.insert(b.seq);
        }
        seqs
    });
    let slow = std::thread::spawn(move || {
        let mut seqs = BTreeSet::new();
        for b in slow_c.by_ref() {
            seqs.insert(b.seq);
            std::thread::sleep(Duration::from_millis(3));
        }
        seqs
    });
    let fast_seqs = fast.join().unwrap();
    let slow_seqs = slow.join().unwrap();
    producer.join().unwrap();
    assert_eq!(fast_seqs, slow_seqs, "lockstep: identical batch sets");
    assert_eq!(fast_seqs.len(), 16);
}

#[test]
fn dropped_consumer_does_not_leak_memory() {
    let ctx = TsContext::host_only();
    let ep = "inproc://e2e-4";
    let mut cfg = producer_cfg(ep);
    cfg.epochs = 1;
    cfg.heartbeat_timeout = Duration::from_millis(300);
    let producer = TensorProducer::spawn(image_loader(64, 8, 2), &ctx, cfg).unwrap();
    let survivor = {
        let ctx = ctx.clone();
        let cfg = consumer_cfg(ep);
        std::thread::spawn(move || {
            let mut c = TensorConsumer::connect(&ctx, cfg).unwrap();
            let mut n = 0;
            for _ in c.by_ref() {
                n += 1;
            }
            n
        })
    };
    // this consumer takes two batches and leaves mid-epoch
    {
        let mut quitter = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
        let _ = quitter.next().unwrap();
        let _ = quitter.next().unwrap();
    }
    assert_eq!(survivor.join().unwrap(), 8);
    producer.join().unwrap();
    assert!(
        ctx.registry.is_empty(),
        "{} leaked storages",
        ctx.registry.len()
    );
}
