//! Mixed-fleet data plane: one producer group serving shm-pointer and
//! streamed-byte consumers **simultaneously**, over `tcp://`.
//!
//! This is the headline correctness claim of the v2 handshake: payload
//! mode is a per-consumer transport detail negotiated at attach, never a
//! property of the stream. A consumer that maps the producer's arena
//! reads pointers; a consumer that cannot (a remote host, simulated here
//! by forcing streamed mode) receives length-prefixed bytes on the same
//! data socket — and both must observe **bit-identical**
//! `(epoch, shard, seq)` batch streams. Either kind may also detach
//! mid-stream without disturbing the other.

use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, PayloadMode, Producer, ProducerConfig};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};

const GUARD: Duration = Duration::from_secs(20);

fn loaders(shards: usize) -> Vec<DataLoader> {
    DataLoader::sharded(
        Arc::new(SyntheticImageDataset::new(64, 16, 16, 5).with_encoded_len(512)),
        DataLoaderConfig {
            batch_size: 4,
            num_workers: 0,
            shuffle: true,
            seed: 29,
            drop_last: true,
            ..Default::default()
        },
        shards,
    )
}

fn producer_cfg(endpoint: &str, epochs: u64) -> ProducerConfig {
    ProducerConfig {
        endpoint: endpoint.to_string(),
        epochs,
        // Full-epoch rubberband + a tiny publish window: the group join
        // window stays open for the whole epoch and no shard can run
        // ahead, so a consumer attaching while another is already
        // admitted (but not yet consuming) is replay-admitted instead of
        // deferred to a barrier that cannot open without its acks.
        rubberband_cutoff: 1.0,
        buffer_size: 2,
        heartbeat_timeout: Duration::from_secs(5),
        first_consumer_timeout: Some(Duration::from_secs(30)),
        poll_interval: Duration::from_micros(200),
        ..Default::default()
    }
}

fn arena_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ts-mixed-{tag}-{}.arena", std::process::id()))
}

/// The full observable identity of one delivered batch: stream position
/// plus every payload byte, gathered to contiguous row-major form so
/// layout differences between the shm and streamed paths cannot hide.
fn fingerprint(b: &tensorsocket::runtime::consumer::ConsumerBatch) -> (u64, usize, u64, Vec<u8>) {
    let mut bytes = Vec::new();
    for f in &b.fields {
        bytes.extend_from_slice(&f.gather_bytes());
    }
    bytes.extend_from_slice(&b.labels.gather_bytes());
    (b.epoch, b.shard, b.seq, bytes)
}

fn drain(mut c: Consumer) -> Vec<(u64, usize, u64, Vec<u8>)> {
    let mut out = Vec::new();
    for b in c.by_ref() {
        out.push(fingerprint(&b.expect("clean batch")));
    }
    out
}

#[test]
fn shm_and_streamed_consumers_see_bit_identical_streams() {
    let ep = "tcp://127.0.0.1:44608";
    let arena = arena_path("ident");
    let producer = Producer::builder()
        .config(producer_cfg(ep, 2))
        .arena(&arena)
        .spawn_sharded(loaders(2))
        .expect("spawn 2-shard tcp producer");

    // Attach both before consumption so neither misses epoch 0. The shm
    // consumer opens the advertised arena by path; the streamed consumer
    // *forces* byte streaming — the remote-host shape, where the arena
    // path would be meaningless.
    let shm = Consumer::builder()
        .shards(2)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("shm consumer attaches");
    assert_eq!(shm.payload_mode(), PayloadMode::Shm);
    let streamed = Consumer::builder()
        .shards(2)
        .payload_mode(PayloadMode::Stream)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("streamed consumer attaches");
    assert_eq!(streamed.payload_mode(), PayloadMode::Stream);

    let shm_thread = std::thread::spawn(move || drain(shm));
    let streamed_thread = std::thread::spawn(move || drain(streamed));
    let shm_stream = shm_thread.join().unwrap();
    let streamed_stream = streamed_thread.join().unwrap();
    producer.join().expect("producer join");

    // 2 epochs × 2 shards × 8 batches, interleaved identically…
    assert_eq!(shm_stream.len(), 32);
    assert_eq!(streamed_stream.len(), 32);
    for (a, b) in shm_stream.iter().zip(&streamed_stream) {
        assert_eq!(
            (a.0, a.1, a.2),
            (b.0, b.1, b.2),
            "stream positions must interleave identically"
        );
        // …and bit-identical: pointer-passing and byte-streaming are two
        // transports for the same batch.
        assert_eq!(a.3, b.3, "payload bytes diverged at {:?}", (a.0, a.1, a.2));
    }
}

#[test]
fn streamed_consumer_detaches_cleanly_while_shm_consumer_continues() {
    let ep = "tcp://127.0.0.1:44624";
    let arena = arena_path("sdetach");
    let producer = Producer::builder()
        .config(producer_cfg(ep, 1))
        .arena(&arena)
        .spawn_sharded(loaders(2))
        .expect("spawn producer");
    let shm = Consumer::builder()
        .shards(2)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("shm consumer attaches");
    // Attach the quitter before any consumption starts, so both begin at
    // epoch 0; it takes two batches, then leaves mid-epoch (drop sends a
    // clean Leave) while the shm consumer sees the full epoch.
    let mut quitter = Consumer::builder()
        .shards(2)
        .payload_mode(PayloadMode::Stream)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("streamed quitter attaches");
    let survivor = std::thread::spawn(move || drain(shm));
    quitter.next().unwrap().expect("first streamed batch");
    quitter.next().unwrap().expect("second streamed batch");
    drop(quitter);
    assert_eq!(survivor.join().unwrap().len(), 16, "full epoch survives");
    producer.join().expect("producer join");
}

#[test]
fn shm_consumer_detaches_cleanly_while_streamed_consumer_continues() {
    let ep = "tcp://127.0.0.1:44640";
    let arena = arena_path("hdetach");
    let producer = Producer::builder()
        .config(producer_cfg(ep, 1))
        .arena(&arena)
        .spawn_sharded(loaders(2))
        .expect("spawn producer");
    let streamed = Consumer::builder()
        .shards(2)
        .payload_mode(PayloadMode::Stream)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("streamed consumer attaches");
    let mut quitter = Consumer::builder()
        .shards(2)
        .handshake_timeout(GUARD)
        .recv_timeout(Duration::from_secs(10))
        .heartbeat_interval(Duration::from_millis(50))
        .connect(ep)
        .expect("shm quitter attaches");
    let survivor = std::thread::spawn(move || drain(streamed));
    quitter.next().unwrap().expect("first shm batch");
    quitter.next().unwrap().expect("second shm batch");
    drop(quitter);
    assert_eq!(survivor.join().unwrap().len(), 16, "full epoch survives");
    producer.join().expect("producer join");
}
