//! The sharded producer group as a real OS-process topology: one producer
//! process (this test) hosting **two sharded producer pipelines** under
//! one epoch coordinator, plus two consumer processes (fork/exec of this
//! same test binary), all collocated and talking over `ipc://` sockets
//! with batch bytes in a shared-memory arena.
//!
//! Verifies the acceptance criteria of multi-producer sharding:
//!
//! * every consumer process sees the **full dataset exactly once per
//!   epoch** — the union of the two shards' disjoint partitions — in the
//!   deterministic `(epoch, shard, seq)` interleave order;
//! * both consumer processes see identical batch sequences for every
//!   epoch both participated in from the start;
//! * the batch order is **bit-identical across independent runs** of the
//!   whole topology (same seed → same permutation → same shard split →
//!   same interleave), asserted by running the topology twice and
//!   comparing transcripts including payload checksums;
//! * payload bytes come from the shared-memory arena (zero-copy) and the
//!   arena fully drains.
//!
//! The whole topology runs through the **unified builder facade**: the
//! group spawns via `Producer::builder()…spawn_sharded`, and each
//! consumer process attaches with `Consumer::builder().connect(endpoint)`
//! and *nothing else* — shard count and arena geometry arrive over the
//! attach handshake, not the environment.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, ProducerConfig, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::Tensor;

const SAMPLES: usize = 32;
const BATCH_SIZE: usize = 4;
const SHARDS: usize = 2;
const EPOCHS: u64 = 3;

/// `label == index`, field encodes the index: batches are deterministic
/// and checksummable across processes.
struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        4
    }

    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(
            &[raw.index as f32, raw.index as f32 * 2.0],
            &[2],
            DeviceId::Cpu,
        )?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "sharded-mp-index"
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a, stable across processes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Consumer-process body: attach with only the endpoint URI — the shard
/// count and arena location arrive over the handshake — consume
/// everything, write one transcript line per batch.
fn run_consumer() {
    let endpoint = std::env::var("TS_SMP_ENDPOINT").expect("TS_SMP_ENDPOINT");
    let arena_path = std::env::var("TS_SMP_ARENA").expect("TS_SMP_ARENA");
    let out_path = std::env::var("TS_SMP_OUT").expect("TS_SMP_OUT");

    let consumer = Consumer::builder()
        .recv_timeout(Duration::from_secs(30))
        .connect(&endpoint)
        .expect("consumer connect");
    // Topology and arena were learned, not configured.
    assert_eq!(consumer.num_shards(), SHARDS);
    assert_eq!(consumer.welcome().shards as usize, SHARDS);
    let ad = consumer.welcome().arena.clone().expect("arena advertised");
    assert_eq!(ad.path, arena_path);
    let joined_epoch = consumer.joined_epoch();

    let mut out = std::fs::File::create(&out_path).expect("result file");
    writeln!(out, "joined {joined_epoch}").unwrap();
    let mut consumed = 0u64;
    let mut consumer = consumer;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        // The whole point: payload bytes came from the mapped arena, not
        // the socket.
        assert!(
            batch.fields[0].storage().is_shared_memory(),
            "field bytes must be arena-backed"
        );
        assert!(
            batch.labels.storage().is_shared_memory(),
            "label bytes must be arena-backed"
        );
        let labels: Vec<String> = batch
            .labels
            .to_vec_i64()
            .unwrap()
            .iter()
            .map(|l| l.to_string())
            .collect();
        let field_sum = checksum(&batch.fields[0].gather_bytes());
        let label_sum = checksum(&batch.labels.gather_bytes());
        writeln!(
            out,
            "batch {} {} {} {} {} {:016x} {:016x}",
            batch.epoch,
            batch.shard,
            batch.seq,
            batch.index_in_epoch,
            labels.join(","),
            field_sum,
            label_sum
        )
        .unwrap();
        consumed += 1;
    }
    assert_eq!(
        consumer.stop_reason(),
        Some(tensorsocket::runtime::consumer::StopReason::End),
        "consumer must stop on a clean End from every shard"
    );
    assert!(consumed > 0, "consumed nothing");
    writeln!(out, "done {consumed}").unwrap();
}

#[derive(Debug, PartialEq, Eq, Clone)]
struct Line {
    shard: usize,
    seq: u64,
    index: u64,
    labels: Vec<i64>,
    field_sum: String,
    label_sum: String,
}

type Transcript = BTreeMap<u64, Vec<Line>>;

fn parse_results(path: &std::path::Path) -> (u64, Transcript) {
    let text = std::fs::read_to_string(path).expect("consumer results");
    let mut joined = 0u64;
    let mut by_epoch: Transcript = BTreeMap::new();
    let mut done = false;
    for line in text.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["joined", e] => joined = e.parse().unwrap(),
            ["batch", epoch, shard, seq, index, labels, fsum, lsum] => {
                by_epoch
                    .entry(epoch.parse().unwrap())
                    .or_default()
                    .push(Line {
                        shard: shard.parse().unwrap(),
                        seq: seq.parse().unwrap(),
                        index: index.parse().unwrap(),
                        labels: labels.split(',').map(|l| l.parse().unwrap()).collect(),
                        field_sum: fsum.to_string(),
                        label_sum: lsum.to_string(),
                    });
            }
            ["done", _] => done = true,
            _ => panic!("unparsable result line: {line}"),
        }
    }
    assert!(done, "consumer did not finish cleanly: {text}");
    (joined, by_epoch)
}

/// Runs the full topology once (group of 2 shard pipelines in this
/// process, 2 forked consumer processes) and returns both transcripts.
fn run_topology(tag: &str) -> Vec<(u64, Transcript)> {
    let tmp = std::env::temp_dir();
    let endpoint = format!("ipc://{}", tmp.join(format!("ts-smp-{tag}.sock")).display());
    let arena_path = tmp.join(format!("ts-smp-{tag}.arena"));
    let out_paths: Vec<_> = (0..2)
        .map(|i| tmp.join(format!("ts-smp-{tag}-consumer{i}.txt")))
        .collect();

    let ctx = TsContext::host_only();
    let loaders = DataLoader::sharded(
        Arc::new(IndexDataset { len: SAMPLES }),
        DataLoaderConfig {
            batch_size: BATCH_SIZE,
            num_workers: 0,
            shuffle: true,
            seed: 11,
            drop_last: true,
            ..Default::default()
        },
        SHARDS,
    );
    // The builder provisions the arena (explicit geometry here, to keep
    // the deliberately small recycle-proving arena of the original test)
    // and binds one recycling slot pool per shard.
    let group = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: endpoint.clone(),
            epochs: EPOCHS,
            // Whole-epoch join window so the second process rubberbands
            // into epoch 0 even under fork/exec latency; if it still
            // misses, the comparison below starts at its joined epoch.
            rubberband_cutoff: 1.0,
            heartbeat_timeout: Duration::from_secs(5),
            first_consumer_timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        })
        .arena_sized(&arena_path, 64, 4096)
        .spawn_sharded(loaders)
        .expect("spawn sharded group");
    let arena = group.arena().expect("builder provisioned arena").clone();

    let exe = std::env::current_exe().expect("test binary path");
    let children: Vec<_> = out_paths
        .iter()
        .map(|out| {
            std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "sharded_multi_process_ipc_exactly_once",
                    "--test-threads=1",
                ])
                .env("TS_SMP_ROLE", "consumer")
                .env("TS_SMP_ENDPOINT", &endpoint)
                .env("TS_SMP_ARENA", &arena_path)
                .env("TS_SMP_OUT", out)
                .spawn()
                .expect("spawn consumer process")
        })
        .collect();

    for mut child in children {
        let status = child.wait().expect("wait consumer");
        assert!(status.success(), "consumer process failed: {status}");
    }
    let stats = group.join_shards().expect("group join");
    assert_eq!(stats.len(), SHARDS);
    for (shard, st) in stats.iter().enumerate() {
        assert_eq!(st.epochs_completed, EPOCHS, "shard {shard}");
        assert_eq!(st.peak_consumers, 2, "shard {shard} admitted both");
        assert_eq!(
            st.batches_published,
            EPOCHS * (SAMPLES / SHARDS / BATCH_SIZE) as u64,
            "shard {shard} published its partition"
        );
    }

    // Releases were acked back from both processes, the builder-bound
    // per-shard pools recycled slots in place, and join drained them.
    for shard in 0..SHARDS as u32 {
        let pool = ctx
            .registry
            .shard_slot_pool(shard)
            .expect("builder bound a per-shard pool");
        assert!(pool.stats().hits > 0, "shard {shard} recycled slots");
    }
    assert_eq!(arena.slots_in_use(), 0, "arena must fully drain");
    assert!(ctx.registry.is_empty(), "registry must fully drain");

    let results = out_paths.iter().map(|p| parse_results(p)).collect();
    for path in &out_paths {
        let _ = std::fs::remove_file(path);
    }
    results
}

#[test]
fn sharded_multi_process_ipc_exactly_once() {
    if std::env::var("TS_SMP_ROLE").as_deref() == Ok("consumer") {
        run_consumer();
        return;
    }
    let tag = std::process::id();

    // Two independent runs of the identical topology: order must be
    // bit-identical across them.
    let runs: Vec<Vec<(u64, Transcript)>> = (0..2)
        .map(|r| run_topology(&format!("{tag}-r{r}")))
        .collect();

    for (r, consumers) in runs.iter().enumerate() {
        let (joined_a, results_a) = &consumers[0];
        let (joined_b, results_b) = &consumers[1];
        let first_common = *joined_a.max(joined_b);
        assert!(
            first_common < EPOCHS,
            "run {r}: no epoch shared by both consumers (joined {joined_a}/{joined_b})"
        );
        for epoch in first_common..EPOCHS {
            let a = results_a.get(&epoch).expect("consumer 0 missing epoch");
            let b = results_b.get(&epoch).expect("consumer 1 missing epoch");
            // Full dataset exactly once per epoch: the union of both
            // shards' batches covers every sample exactly once.
            let mut labels: Vec<i64> = a.iter().flat_map(|l| l.labels.clone()).collect();
            labels.sort_unstable();
            assert_eq!(
                labels,
                (0..SAMPLES as i64).collect::<Vec<i64>>(),
                "run {r} epoch {epoch}: not exactly-once"
            );
            assert_eq!(
                a.len(),
                SAMPLES / BATCH_SIZE,
                "run {r} epoch {epoch} incomplete"
            );
            // Both shards contributed their partitions.
            assert!(a.iter().any(|l| l.shard == 0) && a.iter().any(|l| l.shard == 1));
            // Deterministic interleave: sorted by (index, shard) within
            // the epoch.
            let keys: Vec<(u64, usize)> = a.iter().map(|l| (l.index, l.shard)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "run {r} epoch {epoch}: interleave order");
            // Identical sequences (incl. payload checksums) across the
            // two consumer processes.
            assert_eq!(a, b, "run {r}: consumers diverge in epoch {epoch}");
        }
    }

    // Bit-identical batch order across runs, for every epoch that both
    // runs fully observed.
    let first_common = runs
        .iter()
        .map(|consumers| consumers.iter().map(|(j, _)| *j).max().unwrap())
        .max()
        .unwrap();
    assert!(first_common < EPOCHS, "no epoch observed fully by all runs");
    for epoch in first_common..EPOCHS {
        let a = runs[0][0].1.get(&epoch).unwrap();
        let b = runs[1][0].1.get(&epoch).unwrap();
        assert_eq!(
            a, b,
            "batch order not bit-identical across runs (epoch {epoch})"
        );
    }
}
