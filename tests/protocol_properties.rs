//! Property-based tests of the protocol invariants and substrate algebra.

use proptest::prelude::*;
use tensorsocket::protocol::buffer::BatchWindow;
use tensorsocket::protocol::flex::{covers_producer_batch, plan_flex};
use tensorsocket::protocol::messages::{
    AnnounceContent, BatchAnnounce, CtrlMsg, DataMsg, FlexBatchPayload, JoinDecision, PayloadMode,
};
use ts_baselines::DependentSampler;
use ts_device::DeviceId;
use ts_tensor::{DType, SharedRegistry, Tensor, TensorPayload};

// ---------------------------------------------------------------------------
// flexible batch planning (§3.2.6)
// ---------------------------------------------------------------------------

proptest! {
    /// Every plan covers the producer batch exactly, delivers batches of
    /// exactly the requested size, and repeats fewer than `b` samples.
    #[test]
    fn flex_plan_invariants(p in 1usize..512, b_raw in 1usize..512, offset in 0usize..1024) {
        let b = b_raw.min(p);
        let plan = plan_flex(p, b, offset).unwrap();
        prop_assert!(covers_producer_batch(&plan));
        prop_assert!(plan.batches.iter().all(|pb| pb.len() == b));
        prop_assert!(plan.repeated() < b);
        prop_assert_eq!(plan.batches.len(), p.div_ceil(b));
        // segments stay in range
        for pb in &plan.batches {
            for s in &pb.segments {
                prop_assert!(s.start + s.len <= p);
                prop_assert!(s.len > 0);
            }
        }
    }

    /// The lockstep rate invariant: every consumer finishes one producer
    /// batch per round regardless of its batch size.
    #[test]
    fn flex_all_consumers_same_rate(p in 1usize..256, sizes in prop::collection::vec(1usize..256, 1..6)) {
        for b in sizes {
            let b = b.min(p);
            let plan = plan_flex(p, b, 0).unwrap();
            prop_assert_eq!(plan.delivered(), plan.batches.len() * b);
            prop_assert!(plan.delivered() >= p);
        }
    }
}

// ---------------------------------------------------------------------------
// publish window (§3.2.5)
// ---------------------------------------------------------------------------

proptest! {
    /// Under arbitrary interleavings of publishes and per-consumer acks,
    /// no consumer ever holds more than N outstanding batches and drift
    /// stays within N.
    #[test]
    fn window_bounds_drift(
        n in 1usize..5,
        consumers in 1usize..5,
        script in prop::collection::vec((0usize..5usize, prop::bool::ANY), 1..200)
    ) {
        let mut w = BatchWindow::new(n);
        for c in 0..consumers {
            w.add_consumer(c as u64, 0);
        }
        let mut acked = vec![0u64; consumers];
        for (pick, do_publish) in script {
            if do_publish && w.can_publish() {
                w.published();
            } else {
                let c = pick % consumers;
                if acked[c] < w.next_seq() {
                    w.on_ack(c as u64, acked[c]);
                    acked[c] += 1;
                }
            }
            prop_assert!(w.outstanding() <= n as u64);
            prop_assert!(w.drift() <= n as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// wire codec
// ---------------------------------------------------------------------------

fn arb_payload() -> impl Strategy<Value = TensorPayload> {
    (
        any::<u64>(),
        0u8..4,
        prop::collection::vec(1usize..64, 1..4),
        any::<u16>(),
    )
        .prop_map(|(storage_id, gpu, shape, offset)| {
            let strides = ts_tensor::contiguous_strides(&shape);
            TensorPayload {
                storage_id,
                device: if gpu == 0 {
                    DeviceId::Cpu
                } else {
                    DeviceId::Gpu(gpu)
                },
                dtype: DType::U8,
                shape,
                strides,
                offset: offset as usize,
                // exercise both in-process and cross-process payloads
                shm: if storage_id % 2 == 0 {
                    Some(ts_shm::ShmHandle {
                        slot: gpu as u32,
                        generation: storage_id as u32 | 1,
                        len: offset as u64,
                    })
                } else {
                    None
                },
            }
        })
}

proptest! {
    #[test]
    fn ctrl_messages_roundtrip(id in any::<u64>(), bs in any::<u32>(), seq in any::<u64>(), tag in 0u8..5, stream in any::<bool>()) {
        let msg = match tag {
            0 => CtrlMsg::Join {
                consumer_id: id,
                batch_size: bs,
                mode: if stream { PayloadMode::Stream } else { PayloadMode::Shm },
            },
            1 => CtrlMsg::Ready { consumer_id: id },
            2 => CtrlMsg::Ack { consumer_id: id, seq },
            3 => CtrlMsg::Heartbeat { consumer_id: id },
            _ => CtrlMsg::Leave { consumer_id: id },
        };
        prop_assert_eq!(CtrlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn batch_announces_roundtrip(
        seq in any::<u64>(),
        epoch in any::<u64>(),
        idx in any::<u64>(),
        last in any::<bool>(),
        fields in prop::collection::vec(arb_payload(), 1..4),
        labels in arb_payload(),
        flex in any::<bool>(),
    ) {
        let content = if flex {
            AnnounceContent::Flex {
                batches: vec![FlexBatchPayload {
                    fields: fields.iter().map(|f| vec![f.clone()]).collect(),
                    labels: vec![labels.clone()],
                }],
            }
        } else {
            AnnounceContent::Shared { fields, labels }
        };
        let msg = DataMsg::Batch(BatchAnnounce { seq, epoch, index_in_epoch: idx, last_in_epoch: last, content });
        prop_assert_eq!(DataMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn join_replies_roundtrip(id in any::<u64>(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(), tag in 0u8..3, reason in ".{0,40}") {
        let decision = match tag {
            0 => JoinDecision::AdmitReplay { epoch: a, replay_from: b, num_batches: c, start_seq: d },
            1 => JoinDecision::WaitEpoch { epoch: a },
            _ => JoinDecision::Reject { reason },
        };
        let msg = DataMsg::JoinReply { consumer_id: id, decision };
        prop_assert_eq!(DataMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Arbitrary byte soup never panics the decoders.
    #[test]
    fn decoders_tolerate_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = CtrlMsg::decode(&bytes);
        let _ = DataMsg::decode(&bytes);
        let _ = TensorPayload::decode(&bytes);
    }
}

// ---------------------------------------------------------------------------
// tensor payload round trips
// ---------------------------------------------------------------------------

proptest! {
    /// pack → registry → unpack reproduces any narrow view bit-exactly.
    #[test]
    fn payload_pack_unpack_views(
        rows in 1usize..32,
        cols in 1usize..32,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let t = Tensor::rand_u8(&[rows, cols], DeviceId::Gpu(0), 99);
        let start = ((rows - 1) as f64 * start_frac) as usize;
        let len = 1 + ((rows - start - 1) as f64 * len_frac) as usize;
        let view = t.narrow(0, start, len).unwrap();
        let reg = SharedRegistry::new();
        reg.register(t.storage());
        let payload = TensorPayload::pack(&view);
        let decoded = TensorPayload::decode(&payload.encode()).unwrap();
        let rebuilt = decoded.unpack(&reg).unwrap();
        prop_assert!(rebuilt.data_eq(&view));
        prop_assert_eq!(rebuilt.storage_id(), t.storage_id());
    }
}

// ---------------------------------------------------------------------------
// dependent sampling (Joader)
// ---------------------------------------------------------------------------

proptest! {
    /// For aligned jobs the sampler loads each sample exactly once and
    /// delivers it to every job; per-job visit sets are exact permutations.
    #[test]
    fn dependent_sampler_exactness(len in 1usize..64, jobs in 1usize..5, seed in any::<u64>()) {
        let mut s = DependentSampler::new(len, seed);
        let ids: Vec<u64> = (0..jobs).map(|_| s.add_job()).collect();
        let mut per_job: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        while let Some(d) = s.next() {
            for j in &d.jobs {
                per_job.entry(*j).or_default().push(d.sample);
            }
        }
        prop_assert_eq!(s.loads(), len as u64);
        for id in ids {
            let mut visited = per_job.remove(&id).unwrap_or_default();
            visited.sort_unstable();
            prop_assert_eq!(visited, (0..len).collect::<Vec<_>>());
        }
        prop_assert!((s.sharing_factor() - jobs as f64).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// heartbeat monitor
// ---------------------------------------------------------------------------

proptest! {
    /// A consumer expires exactly once, only after silence longer than the
    /// timeout, and never while it keeps beating.
    #[test]
    fn heartbeat_expiry_is_correct_and_single(
        timeout in 1u64..1000,
        beats in prop::collection::vec((0u64..8, 0u64..10_000), 1..100)
    ) {
        use tensorsocket::HeartbeatMonitor;
        let mut hb = HeartbeatMonitor::new(timeout);
        let mut beats = beats;
        beats.sort_by_key(|&(_, t)| t);
        let mut last_seen: std::collections::HashMap<u64, u64> = Default::default();
        let mut expired: std::collections::HashSet<u64> = Default::default();
        let mut now = 0;
        for (id, t) in beats {
            now = t;
            // expiries the monitor reports at `now`
            for dead in hb.expire(now) {
                let silent_for = now - last_seen[&dead];
                prop_assert!(silent_for > timeout, "expired after only {silent_for}");
                prop_assert!(expired.insert(dead), "double expiry of {dead}");
            }
            if !expired.contains(&id) {
                hb.beat(id, now);
                last_seen.insert(id, now);
            }
        }
        // everyone still tracked is fresh within the timeout at `now`
        for (&id, &seen) in &last_seen {
            if !expired.contains(&id) && now.saturating_sub(seen) <= timeout {
                prop_assert!(hb.is_alive(id, now));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// rubberband policy
// ---------------------------------------------------------------------------

proptest! {
    /// Admission is monotone: if a join at progress p is deferred, any
    /// later join is deferred too; the pinned prefix always covers every
    /// admitted join.
    #[test]
    fn rubberband_admission_monotone(cutoff in 0.0f64..1.0, batches in 1u64..10_000) {
        use tensorsocket::protocol::rubberband::{JoinOutcome, RubberbandPolicy};
        let p = RubberbandPolicy { cutoff };
        let pinned = p.pinned_batches(batches);
        prop_assert!(pinned <= batches.max(1));
        let mut seen_wait = false;
        for published in 0..=batches.min(200) {
            match p.decide(published, batches) {
                JoinOutcome::AdmitReplay { replay_from } => {
                    prop_assert!(!seen_wait, "admit after wait at {published}");
                    prop_assert_eq!(replay_from, 0);
                    // everything the joiner must replay is pinned
                    prop_assert!(published <= pinned || published == 0);
                }
                JoinOutcome::WaitNextEpoch => {
                    seen_wait = true;
                }
            }
        }
    }

    /// The exact window boundary: a join arriving when `published ==
    /// pinned_batches` is the *last* one admitted — one batch later is
    /// deferred to the next epoch.
    #[test]
    fn rubberband_boundary_is_inclusive(cutoff in 0.0001f64..1.0, batches in 1u64..10_000) {
        use tensorsocket::protocol::rubberband::{JoinOutcome, RubberbandPolicy};
        let p = RubberbandPolicy { cutoff };
        let pinned = p.pinned_batches(batches);
        prop_assert!(pinned >= 1, "positive cutoff pins at least one batch");
        prop_assert_eq!(
            p.decide(pinned, batches),
            JoinOutcome::AdmitReplay { replay_from: 0 },
            "join at the boundary (published == pinned == {}) must be admitted", pinned
        );
        if pinned < batches {
            prop_assert_eq!(
                p.decide(pinned + 1, batches),
                JoinOutcome::WaitNextEpoch,
                "one past the boundary must wait"
            );
        }
    }

    /// Cutoffs at or above 1.0 keep the join window open for the whole
    /// epoch: every mid-epoch join is admitted with a full replay, and the
    /// pin set covers the entire epoch.
    #[test]
    fn rubberband_cutoff_at_least_one_admits_all_epoch(
        cutoff in 1.0f64..4.0,
        batches in 1u64..10_000,
        published_frac in 0.0f64..1.0,
    ) {
        use tensorsocket::protocol::rubberband::{JoinOutcome, RubberbandPolicy};
        let p = RubberbandPolicy { cutoff };
        prop_assert!(p.pinned_batches(batches) >= batches, "whole epoch stays pinned");
        let published = ((batches as f64) * published_frac) as u64;
        prop_assert_eq!(
            p.decide(published, batches),
            JoinOutcome::AdmitReplay { replay_from: 0 },
            "cutoff {} must admit a join at {}/{} batches", cutoff, published, batches
        );
        // ...including one arriving exactly at the last published batch.
        prop_assert_eq!(
            p.decide(batches, batches),
            JoinOutcome::AdmitReplay { replay_from: 0 }
        );
    }
}

// ---------------------------------------------------------------------------
// ack tracker release-exactly-once
// ---------------------------------------------------------------------------

proptest! {
    /// Every batch is released exactly once, regardless of the ack/detach
    /// interleaving, and only after every surviving consumer acked it.
    #[test]
    fn ack_tracker_releases_exactly_once(
        consumers in 1usize..5,
        batches in 1u64..20,
        script in prop::collection::vec((0usize..5usize, 0u64..20u64, prop::bool::ANY), 0..300)
    ) {
        use tensorsocket::AckTracker;
        let mut t = AckTracker::new();
        for seq in 0..batches {
            t.published(seq, (0..consumers as u64).collect::<Vec<_>>());
        }
        let mut released: std::collections::HashSet<u64> = Default::default();
        let mut detached: std::collections::HashSet<u64> = Default::default();
        for (c, seq, detach) in script {
            let c = (c % consumers) as u64;
            if detach && !detached.contains(&c) {
                detached.insert(c);
                for seq in t.remove_consumer(c) {
                    prop_assert!(released.insert(seq), "double release of {seq}");
                }
            } else if !detached.contains(&c) {
                let seq = seq % batches;
                if t.on_ack(c, seq) {
                    prop_assert!(released.insert(seq), "double release of {seq}");
                }
            }
        }
        // finish everything: detach all remaining consumers
        for c in 0..consumers as u64 {
            if !detached.contains(&c) {
                for seq in t.remove_consumer(c) {
                    prop_assert!(released.insert(seq), "double release of {seq}");
                }
            }
        }
        prop_assert_eq!(released.len() as u64, batches, "all batches released");
        prop_assert!(t.is_empty());
    }
}

// ---------------------------------------------------------------------------
// shard partitioning (multi-producer sharding)
// ---------------------------------------------------------------------------

proptest! {
    /// For shard counts {1, 2, 3, 5}: the union of the shards' partitions
    /// is exactly the unsharded epoch permutation — no duplicates, no
    /// drops — including uneven `len % shards != 0` tails, and every
    /// shard's slice is balanced to within one sample.
    #[test]
    fn shard_partitions_are_a_permutation(len in 1usize..200, seed in any::<u64>(), epoch in 0u64..5) {
        use std::sync::Arc;
        use ts_data::{Sampler, ShardedSampler, ShuffleSampler};
        let inner: Arc<dyn Sampler> = Arc::new(ShuffleSampler { seed });
        let full = inner.epoch_indices(epoch, len);
        for count in [1usize, 2, 3, 5] {
            let mut union: Vec<usize> = Vec::new();
            for shard in 0..count {
                let s = ShardedSampler { inner: inner.clone(), shard, count };
                let part = s.epoch_indices(epoch, len);
                prop_assert!(
                    part.len() >= len / count && part.len() <= len / count + 1,
                    "unbalanced shard {shard}/{count}: {} of {len}", part.len()
                );
                union.extend(part);
            }
            // Concatenation reproduces the full permutation exactly: the
            // shards are disjoint AND complete.
            prop_assert_eq!(&union, &full, "count {}", count);
        }
    }

    /// Sharding commutes with determinism: the same (seed, epoch, shard)
    /// always yields the same slice, and shard 0 of 1 IS the permutation.
    #[test]
    fn shard_slices_are_deterministic(len in 1usize..100, seed in any::<u64>()) {
        use std::sync::Arc;
        use ts_data::{Sampler, ShardedSampler, ShuffleSampler};
        let inner: Arc<dyn Sampler> = Arc::new(ShuffleSampler { seed });
        let one = ShardedSampler { inner: inner.clone(), shard: 0, count: 1 };
        prop_assert_eq!(one.epoch_indices(2, len), inner.epoch_indices(2, len));
        let s = ShardedSampler { inner: inner.clone(), shard: 1, count: 3 };
        prop_assert_eq!(s.epoch_indices(4, len), s.epoch_indices(4, len));
    }
}

// ---------------------------------------------------------------------------
// the (epoch, shard, seq) interleave
// ---------------------------------------------------------------------------

proptest! {
    /// Driving a ShardInterleave over shards with arbitrary (uneven)
    /// per-epoch batch counts delivers every announcement exactly once,
    /// in exactly the (epoch, index, shard) sort order — the contract
    /// that makes a sharded group's merged stream bit-stable.
    #[test]
    fn shard_interleave_is_the_sorted_order(
        counts in prop::collection::vec(1u64..6, 1..5),
        epochs in 1u64..4,
    ) {
        use tensorsocket::ShardInterleave;
        let mut il = ShardInterleave::new(vec![(0, 0); counts.len()]);
        let mut delivered: Vec<(u64, u64, usize)> = Vec::new();
        while let Some(s) = il.next_shard() {
            let (epoch, index) = il.cursor(s).unwrap();
            if epoch == epochs {
                il.end_shard(s);
                continue;
            }
            delivered.push((epoch, index, s));
            il.advance(s, index + 1 == counts[s]);
        }
        prop_assert!(il.all_ended());
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&delivered, &sorted, "delivery must be the (epoch, index, shard) sort");
        prop_assert_eq!(delivered.len() as u64, epochs * counts.iter().sum::<u64>());
        // exactly once: sorted order has no duplicates
        let mut dedup = sorted.clone();
        dedup.dedup();
        prop_assert_eq!(sorted.len(), dedup.len());
    }

    /// Mid-epoch starts (a rubberband joiner's per-shard replay_from
    /// positions) still produce the sorted order over what remains.
    #[test]
    fn shard_interleave_mid_epoch_starts(
        starts in prop::collection::vec(0u64..4, 1..5),
        count in 4u64..8,
    ) {
        use tensorsocket::ShardInterleave;
        let cursors: Vec<(u64, u64)> = starts.iter().map(|&i| (0u64, i)).collect();
        let mut il = ShardInterleave::new(cursors);
        let mut delivered: Vec<(u64, u64, usize)> = Vec::new();
        while let Some(s) = il.next_shard() {
            let (epoch, index) = il.cursor(s).unwrap();
            if epoch == 1 {
                il.end_shard(s);
                continue;
            }
            delivered.push((epoch, index, s));
            il.advance(s, index + 1 == count);
        }
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&delivered, &sorted);
        let expected: u64 = starts.iter().map(|&i| count - i).sum();
        prop_assert_eq!(delivered.len() as u64, expected);
    }
}

// ---------------------------------------------------------------------------
// coordinated rubberband admission (epoch coordinator)
// ---------------------------------------------------------------------------

proptest! {
    /// Group join decisions are consistent: every shard asking about the
    /// same consumer gets the same answer, an admission keeps every
    /// shard's pin window open until that shard applies it (even if the
    /// shard races past its own pin limit), and the epoch barrier does
    /// not open while an admission is unapplied.
    #[test]
    fn coordinator_admissions_are_consistent_and_pin_preserving(
        shards in 2usize..5,
        pin_limit in 1u64..6,
        progress in prop::collection::vec(0u64..8, 2..5),
    ) {
        use std::time::Duration;
        use tensorsocket::{EpochCoordinator, GroupJoin};
        let shards = shards.min(progress.len());
        let c = EpochCoordinator::new(shards, Duration::from_secs(5));
        let gen = (0..shards)
            .map(|s| c.arrive(s as u32, 0, pin_limit))
            .collect::<Vec<_>>()[0];
        prop_assert!(c.reached(gen));
        for (s, &p) in progress.iter().take(shards).enumerate() {
            c.note_published(s as u32, p);
        }
        let all_within = progress.iter().take(shards).all(|&p| p <= pin_limit);
        let first = c.decide_join(42, false).0;
        // Consistency: every further query (any shard) returns the memo.
        for _ in 0..shards {
            prop_assert_eq!(c.decide_join(42, false).0, first);
        }
        match first {
            GroupJoin::AdmitReplay => {
                prop_assert!(all_within, "admitted although a shard passed its pin window");
                // Every shard must keep pinning until it applies the
                // admission — even one that races past its own limit now.
                c.note_published(0, pin_limit + 3);
                prop_assert!(c.pin_window_open(0), "unapplied admission must keep pins");
                // The next barrier stays shut until everyone applied.
                let gen2 = (0..shards)
                    .map(|s| c.arrive(s as u32, 1, pin_limit))
                    .collect::<Vec<_>>()[0];
                prop_assert!(!c.reached(gen2), "barrier must wait for unapplied admissions");
                for s in 0..shards {
                    c.applied(s as u32, 42);
                }
                prop_assert!(c.reached(gen2), "barrier opens once applied everywhere");
            }
            GroupJoin::WaitNextEpoch => {
                prop_assert!(!all_within, "deferred although every shard was within its window");
            }
            GroupJoin::AdmitAtCurrent => prop_assert!(false, "no no-consumer hint was given"),
        }
    }

    /// Once any shard arrives at the next epoch's barrier, new joins are
    /// deferred — pins survive the boundary for *previously decided*
    /// admissions only, so no shard ever admits into an epoch another
    /// shard has already finished.
    #[test]
    fn coordinator_defers_joins_across_the_boundary(
        shards in 2usize..5,
        pin_limit in 1u64..6,
    ) {
        use std::time::Duration;
        use tensorsocket::{EpochCoordinator, GroupJoin};
        let c = EpochCoordinator::new(shards, Duration::from_secs(5));
        let gen = (0..shards)
            .map(|s| c.arrive(s as u32, 0, pin_limit))
            .collect::<Vec<_>>()[0];
        prop_assert!(c.reached(gen));
        for s in 0..shards {
            c.note_published(s as u32, 1);
        }
        // Shard 0 finishes the epoch and arrives for the next one.
        let _ = c.arrive(0, 1, pin_limit);
        prop_assert_eq!(c.decide_join(7, false).0, GroupJoin::WaitNextEpoch);
        // Memo holds for everyone else too.
        prop_assert_eq!(c.decide_join(7, true).0, GroupJoin::WaitNextEpoch);
    }
}

// ---------------------------------------------------------------------------
// dependent sampler with staggered joins
// ---------------------------------------------------------------------------

proptest! {
    /// With a job joining mid-epoch, every job still visits every sample
    /// exactly once, and total loads never exceed the naive per-job sum.
    #[test]
    fn dependent_sampler_staggered_join(len in 2usize..48, head_start in 0usize..48, seed in any::<u64>()) {
        let head_start = head_start.min(len);
        let mut s = DependentSampler::new(len, seed);
        let a = s.add_job();
        for _ in 0..head_start {
            s.next();
        }
        let b = s.add_job();
        let mut visits: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        while let Some(d) = s.next() {
            for j in d.jobs {
                visits.entry(j).or_default().push(d.sample);
            }
        }
        // job a already visited head_start samples before we tracked
        let a_remaining = visits.remove(&a).unwrap_or_default();
        prop_assert_eq!(a_remaining.len(), len - head_start);
        let mut b_all = visits.remove(&b).unwrap_or_default();
        b_all.sort_unstable();
        b_all.dedup();
        prop_assert_eq!(b_all.len(), len, "job b visits everything exactly once");
        // sharing saves loads: loads <= 2*len - shared overlap
        prop_assert!(s.loads() <= (2 * len) as u64);
        prop_assert!(s.loads() >= len as u64);
    }
}
