//! Durable-log replay, in process: the `ts-log` batch log wired through
//! the producer (background spiller, pin shedding, retention) and the
//! consumer-group replay handshake (`CtrlMsg::Replay` → `LogInfo` →
//! logged range spliced onto the live stream).
//!
//! Covers, over `inproc://` topologies:
//!
//! * a fresh consumer group attaching mid-run replays the **entire**
//!   logged history (full-from-offset coverage) and sees a stream
//!   byte-identical to an uninterrupted consumer's;
//! * a consumer group member that detaches cleanly mid-epoch is resumed
//!   by a successor in the same group from the persisted cursor —
//!   exactly-once over the acked prefix, no gaps, byte-identical
//!   payloads;
//! * a consumer dropped mid-log-replay releases the replay stream
//!   promptly on the producer side (regression: the stream must not run
//!   the full range at a dead topic, and the producer must not wedge);
//! * spawn-time guards: a non-empty log directory and the
//!   flexible-sizing combination both fail with typed `Config` errors.
//!
//! The `kill -9` (no clean Leave, no Drop) variant of the resume story
//! runs as a fork/exec test over `ipc://` in
//! `tests/log_replay_multi_process.rs`.

use std::sync::Arc;
use std::time::Duration;
use tensorsocket::runtime::consumer::StopReason;
use tensorsocket::{Consumer, Producer, ProducerConfig, TsContext, TsError};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::{ops, Tensor};

/// `label == index`, field encodes the index: deterministic,
/// checksummable batches.
struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        4
    }

    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(
            &[raw.index as f32, raw.index as f32 * 2.0],
            &[2],
            DeviceId::Cpu,
        )?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "log-replay-index"
    }
}

fn loader(samples: usize, batch: usize, seed: u64) -> DataLoader {
    DataLoader::new(
        Arc::new(IndexDataset { len: samples }),
        DataLoaderConfig {
            batch_size: batch,
            num_workers: 0,
            shuffle: true,
            seed,
            drop_last: true,
            ..Default::default()
        },
    )
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ts-logtest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One consumed batch, identity + payload digest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Seen {
    epoch: u64,
    shard: usize,
    seq: u64,
    index: u64,
    field_sum: u64,
    label_sum: u64,
}

fn seen(batch: &tensorsocket::ConsumerBatch) -> Seen {
    Seen {
        epoch: batch.epoch,
        shard: batch.shard,
        seq: batch.seq,
        index: batch.index_in_epoch,
        field_sum: ops::checksum(&batch.fields[0]),
        label_sum: ops::checksum(&batch.labels),
    }
}

/// A fresh group attaching mid-run replays everything the log retains:
/// its stream must be identical — same `(epoch, shard, seq)` identities,
/// same payload checksums — to an uninterrupted consumer's, from batch
/// zero.
#[test]
fn fresh_group_late_join_replays_full_history() {
    const SAMPLES: usize = 64;
    const BATCH: usize = 4;
    const EPOCHS: u64 = 3;
    const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64;

    let ctx = TsContext::host_only();
    let ep = "inproc://log-late-join";
    let log_dir = fresh_dir("late-join");
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: EPOCHS,
            // Admission itself is epoch-gated (tiny rubberband window):
            // catch-up coverage must come from the LOG, not from pins.
            rubberband_cutoff: 0.02,
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log(&log_dir)
        .spawn(loader(SAMPLES, BATCH, 21))
        .expect("spawn logging producer");

    let witness = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("witness connect");
    assert!(
        witness.welcome().log.is_some(),
        "v3 WELCOME must advertise the log"
    );

    // Late joiner starts once the witness is into epoch 1, so at least
    // one full epoch is already log-only history. The tiny rubberband
    // window parks it until the epoch 2 boundary; everything before its
    // admission point must come off the log.
    let mut witness = witness;
    let mut full = Vec::new();
    let mut late: Option<std::thread::JoinHandle<Vec<Seen>>> = None;
    for batch in witness.by_ref() {
        let batch = batch.expect("clean witness stream");
        full.push(seen(&batch));
        if full.len() as u64 == PER_EPOCH + 2 {
            let ctx_c = ctx.clone();
            late = Some(std::thread::spawn(move || {
                let mut consumer = Consumer::builder()
                    .context(&ctx_c)
                    .group("fresh-group")
                    .recv_timeout(Duration::from_secs(20))
                    .connect(ep)
                    .expect("late group connect");
                let mut got = Vec::new();
                for batch in consumer.by_ref() {
                    got.push(seen(&batch.expect("clean late stream")));
                }
                assert_eq!(consumer.stop_reason(), Some(StopReason::End));
                got
            }));
        }
    }
    assert_eq!(witness.stop_reason(), Some(StopReason::End));
    let late_stream = late
        .expect("late joiner never spawned")
        .join()
        .expect("late consumer thread");

    let stats = producer.join().expect("producer join");
    assert_eq!(stats.epochs_completed, EPOCHS);
    assert_eq!(full.len() as u64, EPOCHS * PER_EPOCH);

    // Full-from-offset coverage: the group consumer's stream IS the
    // witness stream, from the very first batch, payload bytes included
    // — epochs it never lived through came off the durable log.
    assert_eq!(
        late_stream, full,
        "log replay must reproduce the full history byte-identically"
    );

    assert!(
        ctx.metrics.counter("replay.log_batches").get() > 0,
        "catch-up must have been served from the log"
    );
    assert!(ctx.metrics.counter("producer.replay_requests").get() >= 1);
    assert_eq!(ctx.metrics.counter("log.append_errors").get(), 0);
    assert!(
        ctx.metrics.counter("stage.log_append_bytes").get() > 0,
        "spiller must have appended the published batches"
    );
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// A group member that detaches cleanly mid-epoch is resumed by a new
/// consumer under the same group name: the successor starts at the
/// persisted cursor (first un-acked batch), and victim + successor
/// together reproduce the witness stream with no gap and no re-delivery
/// of acked work.
#[test]
fn group_cursor_resumes_after_clean_drop() {
    const SAMPLES: usize = 96;
    const BATCH: usize = 4;
    const EPOCHS: u64 = 3;
    const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64;
    // Victim leaves mid-epoch-1.
    const VICTIM_BATCHES: u64 = PER_EPOCH + PER_EPOCH / 2;

    let ctx = TsContext::host_only();
    let ep = "inproc://log-cursor-resume";
    let log_dir = fresh_dir("cursor-resume");
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: EPOCHS,
            rubberband_cutoff: 1.0,
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log(&log_dir)
        .spawn(loader(SAMPLES, BATCH, 33))
        .expect("spawn logging producer");

    let mut witness = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("witness connect");
    let mut victim = Consumer::builder()
        .context(&ctx)
        .group("trainers")
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("victim connect");

    // Witness drains everything in the background (the window gates the
    // producer on its slowest member, so somebody must keep acking while
    // the victim stops and the successor replays) — but pauses just past
    // the victim's exit point until the successor is attached, so the
    // producer cannot race to End before the group resumes.
    let successor_up = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let successor_up_w = successor_up.clone();
    let witness_thread: std::thread::JoinHandle<Vec<Seen>> = std::thread::spawn(move || {
        let mut full = Vec::new();
        for batch in witness.by_ref() {
            full.push(seen(&batch.expect("clean witness stream")));
            while full.len() as u64 > VICTIM_BATCHES
                && !successor_up_w.load(std::sync::atomic::Ordering::Acquire)
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(witness.stop_reason(), Some(StopReason::End));
        full
    });

    // Victim consumes a batch and a half's worth of epochs, then leaves.
    let mut victim_stream = Vec::new();
    for batch in victim.by_ref() {
        victim_stream.push(seen(&batch.expect("clean victim stream")));
        if victim_stream.len() as u64 >= VICTIM_BATCHES {
            break;
        }
    }
    drop(victim); // clean Leave; last batch stays un-acked

    // Successor resumes the group: its cursor survived the Leave.
    let mut successor = Consumer::builder()
        .context(&ctx)
        .group("trainers")
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("successor connect");
    successor_up.store(true, std::sync::atomic::Ordering::Release);
    let mut resumed = Vec::new();
    for batch in successor.by_ref() {
        resumed.push(seen(&batch.expect("clean successor stream")));
    }
    assert_eq!(successor.stop_reason(), Some(StopReason::End));
    drop(successor);

    let full = witness_thread.join().expect("witness thread");
    producer.join().expect("producer join");

    assert_eq!(full.len() as u64, EPOCHS * PER_EPOCH);

    // The successor resumed from the victim's cursor: at or before the
    // first batch the victim never acked (the ack for batch k is sent
    // when batch k+1 is taken, so the cursor trails consumption by one).
    let first_resumed = resumed.first().expect("successor consumed nothing");
    let victim_last_acked = &victim_stream[victim_stream.len() - 2];
    assert!(
        first_resumed.seq <= victim_last_acked.seq + 1,
        "successor started at seq {} — past the group's acked prefix \
         (last acked seq {})",
        first_resumed.seq,
        victim_last_acked.seq
    );

    // No gap, no divergence: victim prefix + successor tail, deduped on
    // seq, is exactly the witness stream.
    let mut merged: Vec<Seen> = Vec::new();
    for s in victim_stream.iter().chain(resumed.iter()) {
        if let Some(pos) = merged.iter().position(|m| m.seq == s.seq) {
            assert_eq!(
                &merged[pos], s,
                "re-delivered batch diverged at seq {}",
                s.seq
            );
        } else {
            merged.push(s.clone());
        }
    }
    merged.sort_by_key(|s| s.seq);
    assert_eq!(
        merged, full,
        "victim + successor must reproduce the uninterrupted stream exactly"
    );
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// Regression: an epoch longer than the segment-retention budget, with a
/// grouped consumer joining mid-epoch while another consumer is active
/// (the rubberband `admit` path, splice point = the epoch start). With
/// no group cursor registered yet, retention used to trim purely by
/// budget, leaving `retained_min` past the joiner's splice point — its
/// `CtrlMsg::Replay` then panicked the producer control loop
/// (`Ord::clamp` with min > max), i.e. a remote message killed the
/// producer; and the shed pins' log frames were gone, so even a
/// surviving producer had nothing to replay. Retention is now floored
/// at the oldest rubberband pin and the resolver never panics: the
/// joiner's catch-up must be byte-identical to the witness stream.
#[test]
fn grouped_mid_epoch_join_survives_budget_trimmed_retention() {
    const SAMPLES: usize = 2048;
    const BATCH: usize = 4;
    const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64; // 512
                                                     // Joiner arrives well past the retention budget (8-record segments,
                                                     // 0 sealed retained → budget ≈ 16 records without a floor).
    const JOIN_AT: u64 = 300;

    let ctx = TsContext::host_only();
    let ep = "inproc://log-trimmed-mid-epoch-join";
    let log_dir = fresh_dir("trimmed-mid-epoch");
    let mut log_cfg = ts_log::LogConfig::new(&log_dir);
    log_cfg.segment_records = 8;
    log_cfg.segment_bytes = 64 << 10;
    log_cfg.retain_segments = 0;
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: 1,
            // The whole epoch stays pinned/joinable: the join window is
            // still open when retention would otherwise have trimmed
            // far past the epoch start.
            rubberband_cutoff: 1.0,
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log_config(log_cfg)
        .spawn(loader(SAMPLES, BATCH, 11))
        .expect("spawn logging producer");

    let mut witness = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("witness connect");

    // Pace the witness so the epoch spans several 25ms log sweeps —
    // retention and pin shedding must actually run before the joiner
    // arrives for this to regress.
    let mut full = Vec::new();
    let mut late: Option<std::thread::JoinHandle<Vec<Seen>>> = None;
    for batch in witness.by_ref() {
        let batch = batch.expect("clean witness stream");
        full.push(seen(&batch));
        if full.len() % 8 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        if full.len() as u64 == JOIN_AT {
            let ctx_c = ctx.clone();
            late = Some(std::thread::spawn(move || {
                let mut joiner = Consumer::builder()
                    .context(&ctx_c)
                    .group("mid-epoch-group")
                    .recv_timeout(Duration::from_secs(20))
                    .connect(ep)
                    .expect("grouped mid-epoch connect");
                let mut got = Vec::new();
                for batch in joiner.by_ref() {
                    got.push(seen(&batch.expect("clean joiner stream")));
                }
                assert_eq!(joiner.stop_reason(), Some(StopReason::End));
                got
            }));
        }
    }
    assert_eq!(witness.stop_reason(), Some(StopReason::End));
    assert_eq!(full.len() as u64, PER_EPOCH);
    let joined = late
        .expect("joiner never spawned")
        .join()
        .expect("joiner thread");

    // The producer must have survived the Replay (no control-loop
    // panic) and finished its epoch.
    let stats = producer.join().expect("producer join");
    assert_eq!(stats.epochs_completed, 1);

    // The joiner's rubberband catch-up covered the whole epoch — shed
    // pins served from log frames retention was NOT allowed to delete.
    assert_eq!(
        joined, full,
        "mid-epoch group join must reproduce the witness stream exactly"
    );
    assert!(
        ctx.metrics.counter("replay.log_batches").get() > 0,
        "some catch-up batches must have come from shed pins' log frames"
    );
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// Regression: after a disk failure latches the spiller's `failed` flag,
/// `logged_up_to` keeps advancing (the arena-release gate must not wedge
/// on a bad disk) — but that makes `seq < logged_up_to` no proof the
/// bytes are in the log. The log sweep used to shed rubberband pins on
/// that test alone, releasing batches whose bytes were then neither live
/// nor on disk; a later joiner's catch-up silently skipped them, a
/// permanent stream gap. Pins must stay memory-resident once the log has
/// failed, so the joiner still gets a byte-identical epoch.
#[test]
fn pins_survive_log_failure_for_rubberband_replay() {
    const SAMPLES: usize = 192;
    const BATCH: usize = 4;
    const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64; // 48
    const JOIN_AT: u64 = 30;

    let ctx = TsContext::host_only();
    let ep = "inproc://log-failure-pins";
    let log_dir = fresh_dir("failure-pins");
    let mut log_cfg = ts_log::LogConfig::new(&log_dir);
    log_cfg.segment_records = 4;
    log_cfg.segment_bytes = 64 << 10;
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: 1,
            rubberband_cutoff: 1.0,
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log_config(log_cfg)
        .spawn(loader(SAMPLES, BATCH, 17))
        .expect("spawn logging producer");

    // Inject a disk failure at the third segment: a directory squatting
    // on the segment's path makes the spiller's rotation at seq 8 fail
    // (EISDIR regardless of privileges), latching `failed` after two
    // good segments. Publishing starts only once the witness joins, so
    // the obstruction is in place before any append.
    std::fs::create_dir_all(
        log_dir
            .join("shard-0")
            .join("seg-00000000000000000008.tslog"),
    )
    .expect("plant segment obstruction");

    let mut witness = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("witness connect");

    // Pace the epoch across several 25ms log sweeps: the sweep must get
    // the chance to (wrongly) shed pins before the joiner arrives.
    let mut full = Vec::new();
    let mut late: Option<std::thread::JoinHandle<Vec<Seen>>> = None;
    for batch in witness.by_ref() {
        let batch = batch.expect("clean witness stream");
        full.push(seen(&batch));
        std::thread::sleep(Duration::from_millis(1));
        if full.len() as u64 == JOIN_AT {
            let ctx_c = ctx.clone();
            late = Some(std::thread::spawn(move || {
                let mut joiner = Consumer::builder()
                    .context(&ctx_c)
                    .group("post-failure-group")
                    .recv_timeout(Duration::from_secs(20))
                    .connect(ep)
                    .expect("post-failure connect");
                let mut got = Vec::new();
                for batch in joiner.by_ref() {
                    got.push(seen(&batch.expect("clean joiner stream")));
                }
                assert_eq!(joiner.stop_reason(), Some(StopReason::End));
                got
            }));
        }
    }
    assert_eq!(witness.stop_reason(), Some(StopReason::End));
    assert_eq!(full.len() as u64, PER_EPOCH);
    let joined = late
        .expect("joiner never spawned")
        .join()
        .expect("joiner thread");
    producer.join().expect("producer join must not wedge");

    assert!(
        ctx.metrics.counter("log.append_errors").get() > 0,
        "the injected disk failure never latched — the test lost its teeth"
    );
    assert_eq!(
        joined, full,
        "catch-up after a log failure must be gapless and byte-identical \
         (pins kept memory-resident)"
    );
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// Regression: a consumer that drops mid-log-replay must release the
/// replay stream promptly — the producer stops streaming the logged
/// range at the dead topic (it drains control between frames) instead of
/// running it to completion, and finishes its epochs without wedging.
#[test]
fn drop_mid_log_replay_releases_stream() {
    const SAMPLES: usize = 4096;
    const BATCH: usize = 2;
    const EPOCHS: u64 = 2;
    const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64; // 2048: a long replay range

    let ctx = TsContext::host_only();
    let ep = "inproc://log-drop-mid-replay";
    let log_dir = fresh_dir("drop-mid-replay");
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: EPOCHS,
            rubberband_cutoff: 1.0,
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log(&log_dir)
        .spawn(loader(SAMPLES, BATCH, 7))
        .expect("spawn logging producer");

    let mut witness = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .connect(ep)
        .expect("witness connect");

    // Let a full epoch land in the log before the doomed joiner arrives.
    let mut consumed = 0u64;
    for batch in witness.by_ref() {
        batch.expect("clean witness stream");
        consumed += 1;
        if consumed == PER_EPOCH + 8 {
            let doomed = Consumer::builder()
                .context(&ctx)
                .group("doomed")
                .recv_timeout(Duration::from_secs(20))
                .connect(ep)
                .expect("doomed connect");
            // Dropped the moment its replay plan is answered: the
            // producer is about to stream ≥ one epoch of logged frames.
            drop(doomed);
        }
    }
    assert_eq!(witness.stop_reason(), Some(StopReason::End));
    assert_eq!(consumed, EPOCHS * PER_EPOCH);
    let stats = producer.join().expect("producer join must not wedge");
    assert_eq!(stats.epochs_completed, EPOCHS);

    let replayed = ctx.metrics.counter("replay.log_batches").get();
    assert!(
        replayed < PER_EPOCH,
        "producer streamed {replayed} of a ≥{PER_EPOCH}-batch logged range \
         to a consumer that had already left — the mid-replay Leave was \
         not observed"
    );
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// Sequence numbers restart per run, so spawning over a log directory
/// that already holds records must fail loudly instead of serving stale
/// bytes to resuming groups.
#[test]
fn producer_refuses_dirty_log_dir() {
    const SAMPLES: usize = 16;
    const BATCH: usize = 4;

    let ctx = TsContext::host_only();
    let ep = "inproc://log-dirty-dir";
    let log_dir = fresh_dir("dirty-dir");
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: ep.to_string(),
            epochs: 1,
            first_consumer_timeout: Some(Duration::from_secs(10)),
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        })
        .log(&log_dir)
        .spawn(loader(SAMPLES, BATCH, 5))
        .expect("first spawn");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(20))
        .connect(ep)
        .expect("consumer connect");
    for batch in consumer.by_ref() {
        batch.expect("clean stream");
    }
    drop(consumer);
    producer.join().expect("producer join");

    let ctx2 = TsContext::host_only();
    let err = Producer::builder()
        .context(&ctx2)
        .endpoint("inproc://log-dirty-dir-2")
        .log(&log_dir)
        .spawn(loader(SAMPLES, BATCH, 5))
        .expect_err("second spawn over a non-empty log must fail");
    match err {
        TsError::Config(msg) => assert!(
            msg.contains("already holds records"),
            "unexpected config error: {msg}"
        ),
        other => panic!("expected Config error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&log_dir);
}

/// Flexible sizing carves per-consumer views with no streamed
/// serialization to store; combining it with the log is a typed spawn
/// failure, not a silently incomplete log.
#[test]
fn flexible_and_log_are_incompatible() {
    let ctx = TsContext::host_only();
    let log_dir = fresh_dir("flex-incompat");
    let err = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://log-flex-incompat")
        .flexible(tensorsocket::FlexibleConfig::new(8))
        .log(&log_dir)
        .spawn(loader(32, 4, 3))
        .expect_err("flexible + log must fail at spawn");
    match err {
        TsError::Config(msg) => assert!(
            msg.contains("incompatible"),
            "unexpected config error: {msg}"
        ),
        other => panic!("expected Config error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&log_dir);
}
