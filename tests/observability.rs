//! Live observability over real sockets: the control-plane stats scrape
//! against running producers.
//!
//! Everything here goes through the wire path `ts-top` uses —
//! [`tensorsocket::scrape_stats`] from a *separate* [`TsContext`] (its
//! own sockets, its own registry), over `ipc://`, against a producer
//! mid-stream — so these tests prove the scrape is genuinely
//! out-of-band: no consumer attach, no join, no shared process state.
//!
//! Covered acceptance criteria:
//!
//! * a sharded producer reports per-shard stage histograms
//!   (`stage.s<N>.feeder_fetch_ns`, `stage.s<N>.publish_ack_ns`) with
//!   non-zero quantiles, plus the consumer-side wait histogram, all in
//!   one deterministically-sorted snapshot;
//! * counters cohere across the pipeline: with a single consumer,
//!   `producer.batches == consumer.batches` and `consumer.acks` trails
//!   by exactly the one batch still being "trained on";
//! * a producer that receives a control frame with an unknown
//!   (future-version) tag ignores it and keeps serving — the stream
//!   still ends cleanly and `producer.ctrl_unknown` records the event;
//! * on a GPU producer the staging stage histograms
//!   (`staging.h2d_ns`, `staging.copy_wait_ns`) flow through the same
//!   scrape.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensorsocket::{
    scrape_stats, scrape_trace, Consumer, Producer, SpanKind, StatsPayload, TraceRecordSnap,
    TsContext, STATS_VERSION, TRACE_VERSION,
};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::Tensor;

struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        4
    }

    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(&[raw.index as f32], &[1], DeviceId::Cpu)?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "observability-index"
    }
}

fn loader(samples: usize, batch: usize, workers: usize) -> DataLoader {
    DataLoader::new(
        Arc::new(IndexDataset { len: samples }),
        DataLoaderConfig {
            batch_size: batch,
            num_workers: workers,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

fn ipc_endpoint(tag: &str) -> String {
    format!(
        "ipc://{}",
        std::env::temp_dir()
            .join(format!("ts-obs-{tag}-{}.sock", std::process::id()))
            .display()
    )
}

/// Scrapes `endpoint` from a scrape-only context until `ready` accepts a
/// snapshot (counters settle as the pipeline warms up) or panics with
/// the last snapshot after `deadline`.
fn scrape_until(
    scrape_ctx: &TsContext,
    endpoint: &str,
    deadline: Duration,
    ready: impl Fn(&StatsPayload) -> bool,
) -> StatsPayload {
    let end = Instant::now() + deadline;
    let mut last: Option<StatsPayload> = None;
    loop {
        let stats =
            scrape_stats(scrape_ctx, endpoint, Duration::from_secs(5)).expect("scrape failed");
        if ready(&stats) {
            return stats;
        }
        if Instant::now() > end {
            panic!("scrape never satisfied the readiness predicate; last: {last:#?}");
        }
        last = Some(stats);
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn hist_warm(stats: &StatsPayload, name: &str) -> bool {
    stats.histogram(name).is_some_and(|h| h.count > 0)
}

/// Asserts a scraped histogram has plausible non-zero quantiles.
fn assert_hist_nonzero(stats: &StatsPayload, name: &str) {
    let h = stats
        .histogram(name)
        .unwrap_or_else(|| panic!("{name} missing from snapshot"));
    assert!(h.count > 0, "{name}: empty");
    assert!(h.p50() > 0, "{name}: zero p50");
    assert!(h.p99() >= h.p50(), "{name}: p99 < p50");
    assert!(h.max >= h.p99(), "{name}: max < p99");
    assert!(h.mean() > 0.0, "{name}: zero mean");
}

/// A consumer thread that consumes `pause_after` batches, reports in,
/// then parks until released — leaving the producer alive mid-stream
/// (window full / waiting on acks) with stable, scrapable metrics.
fn paused_consumer(
    ctx: &TsContext,
    endpoint: &str,
    pause_after: usize,
) -> (
    std::thread::JoinHandle<usize>,
    mpsc::Receiver<()>,
    mpsc::Sender<()>,
) {
    paused_consumer_with_id(ctx, endpoint, pause_after, None)
}

/// [`paused_consumer`], optionally pinning the consumer id — so tests can
/// assert on producer-side state that names the consumer (the watchdog's
/// straggler verdict).
fn paused_consumer_with_id(
    ctx: &TsContext,
    endpoint: &str,
    pause_after: usize,
    id: Option<u64>,
) -> (
    std::thread::JoinHandle<usize>,
    mpsc::Receiver<()>,
    mpsc::Sender<()>,
) {
    let (reached_tx, reached_rx) = mpsc::channel();
    let (go_tx, go_rx) = mpsc::channel();
    let ctx = ctx.clone();
    let endpoint = endpoint.to_string();
    let handle = std::thread::spawn(move || {
        let mut builder = Consumer::builder()
            .context(&ctx)
            .recv_timeout(Duration::from_secs(30));
        if let Some(id) = id {
            builder = builder.consumer_id(id);
        }
        let mut consumer = builder.connect(&endpoint).expect("consumer connect");
        let mut consumed = 0usize;
        for batch in consumer.by_ref() {
            batch.expect("clean stream");
            consumed += 1;
            if consumed == pause_after {
                reached_tx.send(()).unwrap();
                go_rx.recv().unwrap();
            }
        }
        consumed
    });
    (handle, reached_rx, go_tx)
}

#[test]
fn sharded_ipc_scrape_reports_per_shard_stage_histograms() {
    let endpoint = ipc_endpoint("sharded");
    let ctx = TsContext::host_only();
    let loaders = DataLoader::sharded(
        Arc::new(IndexDataset { len: 64 }),
        DataLoaderConfig {
            batch_size: 4,
            num_workers: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
        2,
    );
    let group = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(3)
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn_sharded(loaders)
        .expect("spawn sharded group");

    // 3 epochs × 16 batches (8 per shard); pause halfway through.
    let (consumer, reached, go) = paused_consumer(&ctx, &endpoint, 24);
    reached
        .recv_timeout(Duration::from_secs(60))
        .expect("consumer reached the pause point");

    // The scrape context shares nothing with the pipeline: the snapshot
    // below arrived over the ipc:// socket, not through process memory.
    let scrape_ctx = TsContext::host_only();
    let targets = [
        "stage.s0.feeder_fetch_ns",
        "stage.s1.feeder_fetch_ns",
        "stage.s0.publish_ack_ns",
        "stage.s1.publish_ack_ns",
        "consumer.wait_ns",
        "consumer.interarrival_ns",
    ];
    let stats = scrape_until(&scrape_ctx, &endpoint, Duration::from_secs(30), |s| {
        targets.iter().all(|t| hist_warm(s, t))
    });

    assert_eq!(stats.version, STATS_VERSION);
    for t in targets {
        assert_hist_nonzero(&stats, t);
    }
    assert!(stats.counter("producer.batches").unwrap_or(0) > 0);
    assert!(stats.counter("consumer.batches").unwrap_or(0) >= 24);
    let gauges = stats.gauges();
    for g in ["stage.s0.pin_depth", "stage.s1.pin_depth"] {
        assert!(
            gauges.iter().any(|(name, _)| name == g),
            "{g} missing from snapshot gauges"
        );
    }
    // S1: the snapshot arrives deterministically name-sorted.
    for pairs in [
        stats.counters.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        stats.histograms.iter().map(|(n, _)| n).collect::<Vec<_>>(),
    ] {
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "snapshot not sorted");
    }

    go.send(()).unwrap();
    let consumed = consumer.join().expect("consumer thread");
    assert_eq!(consumed, 48, "3 epochs × 16 interleaved batches");
    let stats = group.join_shards().expect("group join");
    assert_eq!(stats.len(), 2);
}

#[test]
fn scraped_counters_cohere_for_a_single_consumer() {
    let endpoint = ipc_endpoint("cohere");
    let ctx = TsContext::host_only();
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(1)
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn(loader(32, 4, 0))
        .expect("spawn producer");

    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .connect(&endpoint)
        .expect("consumer connect");
    // Consume the whole epoch but do NOT advance past the last batch:
    // its ack is deferred until the consumer "moves on", so the producer
    // parks in its drain loop — alive, scrapable, counters settled.
    for _ in 0..8 {
        consumer.next().expect("batch").expect("clean stream");
    }

    let scrape_ctx = TsContext::host_only();
    let stats = scrape_stats(&scrape_ctx, &endpoint, Duration::from_secs(10)).expect("scrape");
    assert_eq!(stats.counter("producer.batches"), Some(8));
    assert_eq!(stats.counter("consumer.batches"), Some(8));
    assert_eq!(
        stats.counter("producer.batches"),
        stats.counter("consumer.batches"),
        "single consumer must have consumed every published batch"
    );
    // The ack for batch 8 is still pending (the consumer is "training").
    assert_eq!(stats.counter("consumer.acks"), Some(7));
    assert_hist_nonzero(&stats, "stage.publish_ack_ns");

    // Dropping the consumer sends the final ack; the producer finishes.
    drop(consumer);
    let final_stats = producer.join().expect("producer join");
    assert_eq!(final_stats.batches_published, 8);
}

#[test]
fn unknown_ctrl_tag_is_ignored_by_a_live_producer() {
    let endpoint = ipc_endpoint("unknown-tag");
    let ctx = TsContext::host_only();
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(2)
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn(loader(32, 4, 0))
        .expect("spawn producer");

    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_secs(30))
        .connect(&endpoint)
        .expect("consumer connect");

    let mut consumed = 0usize;
    for batch in consumer.by_ref() {
        batch.expect("clean stream");
        consumed += 1;
        if consumed == 1 {
            // A frame from a "newer" peer: valid length, unknown tag.
            // The producer must log-and-ignore it, not kill the stream.
            let map = ts_socket::EndpointMap::new(&endpoint, 1);
            let push = ts_socket::PushSocket::connect(&ctx.sockets, &map.ctrl(0));
            push.send(ts_socket::Multipart::single(bytes::Bytes::from_static(&[
                250, 0, 0, 0, 0, 0, 0, 0, 0,
            ])))
            .expect("push future-tag frame");
            // Hold the stream here (no acks flow, the producer parks on
            // its control channel) until the frame has been seen — so
            // the producer can't finish and exit before processing it.
            let deadline = Instant::now() + Duration::from_secs(10);
            while ctx.metrics.counter("producer.ctrl_unknown").get() == 0 {
                assert!(
                    Instant::now() < deadline,
                    "producer never processed the unknown frame"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    assert_eq!(consumed, 16, "stream must complete despite the alien frame");
    let stats = producer.join().expect("producer join");
    assert_eq!(stats.batches_published, 16);
    assert_eq!(stats.consumers_detached, 0);
    assert!(
        ctx.metrics.counter("producer.ctrl_unknown").get() >= 1,
        "the ignored frame must be counted"
    );
}

#[test]
fn gpu_staging_histograms_flow_through_the_scrape() {
    let endpoint = ipc_endpoint("staging");
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(3)
        .device(DeviceId::Gpu(0))
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn(loader(64, 4, 2))
        .expect("spawn producer");

    // 3 epochs × 16 batches; pause halfway.
    let (consumer, reached, go) = paused_consumer(&ctx, &endpoint, 24);
    reached
        .recv_timeout(Duration::from_secs(60))
        .expect("consumer reached the pause point");

    let scrape_ctx = TsContext::host_only();
    let targets = [
        "staging.h2d_ns",
        "staging.copy_wait_ns",
        "stage.feeder_fetch_ns",
        "stage.publish_ack_ns",
    ];
    let stats = scrape_until(&scrape_ctx, &endpoint, Duration::from_secs(30), |s| {
        targets.iter().all(|t| hist_warm(s, t))
    });
    for t in targets {
        assert_hist_nonzero(&stats, t);
    }
    assert!(stats.counter("staging.h2d_bytes").unwrap_or(0) > 0);

    go.send(()).unwrap();
    let consumed = consumer.join().expect("consumer thread");
    assert_eq!(consumed, 48);
    let final_stats = producer.join().expect("producer join");
    assert_eq!(final_stats.batches_published, 48);
}

#[test]
fn stats_replies_echo_the_request_sequence_stamp() {
    // The v2 scrape protocol: each StatsRequest carries a sequence stamp
    // and the producer echoes it verbatim in the Stats reply, so a
    // scraper can tell the answer to its in-flight request from a late
    // duplicate of an earlier round.
    use tensorsocket::protocol::messages::{topics, CtrlMsg, DataMsg};

    let endpoint = ipc_endpoint("stats-seq");
    let ctx = TsContext::host_only();
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(2)
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn(loader(64, 4, 0))
        .expect("spawn producer");
    let (consumer, reached, go) = paused_consumer(&ctx, &endpoint, 4);
    reached
        .recv_timeout(Duration::from_secs(60))
        .expect("consumer reached the pause point");

    // Hand-rolled scrape from a separate context: stamp the request with
    // an arbitrary sequence and require the reply to echo it.
    let scrape_ctx = TsContext::host_only();
    let map = ts_socket::EndpointMap::new(&endpoint, 1);
    let token = 0xC0FFEE_u64;
    let sub = ts_socket::SubSocket::connect(&scrape_ctx.sockets, &map.data(0));
    sub.subscribe(&topics::stats(token));
    let push = ts_socket::PushSocket::connect(&scrape_ctx.sockets, &map.ctrl(0));
    let deadline = Instant::now() + Duration::from_secs(10);
    let echoed = loop {
        push.send(ts_socket::Multipart::single(
            CtrlMsg::StatsRequest {
                token,
                version: STATS_VERSION,
                seq: 7,
            }
            .encode(),
        ))
        .expect("push stats request");
        match sub.recv_timeout(Duration::from_millis(50)) {
            Ok((_, msg)) => {
                if let Ok(DataMsg::Stats { token: t, seq, .. }) = DataMsg::decode(&msg.frames()[0])
                {
                    assert_eq!(t, token);
                    break seq;
                }
            }
            Err(_) => assert!(Instant::now() < deadline, "no stats reply"),
        }
    };
    assert_eq!(echoed, 7, "the reply must echo the request's stamp");

    go.send(()).unwrap();
    let consumed = consumer.join().expect("consumer thread");
    assert_eq!(consumed, 32);
    producer.join().expect("producer join");
}

/// The recorded `(start, end)` of `kind`, or a panic naming the record.
fn span_of(r: &TraceRecordSnap, kind: SpanKind) -> (u64, u64) {
    r.span(kind).unwrap_or_else(|| {
        panic!(
            "record (epoch={}, shard={}, seq={}) has no {} span: {:?}",
            r.epoch,
            r.shard,
            r.seq,
            kind.as_str(),
            r.spans
        )
    })
}

#[test]
fn flight_recorder_traces_batches_end_to_end_over_the_wire() {
    // The tentpole acceptance test: a sharded GPU-staged producer with an
    // arena + per-shard slot pools and one in-process consumer. The trace
    // scrape (from a separate context, over ipc://) must return completed
    // per-batch records whose span timestamps are monotonically ordered
    // across feeder → publish → ack, with the consumer-side recv/rebuild/
    // release spans stitched onto the *same* `(epoch, shard, seq)` record
    // — and the steady-state zero-copy invariant must hold with tracing
    // enabled (the recorder stamps relaxed atomics, it never allocates or
    // copies on the publish path).
    let endpoint = ipc_endpoint("flight-recorder");
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let arena_path =
        std::env::temp_dir().join(format!("ts-obs-trace-{}.arena", std::process::id()));
    ctx.create_arena(&arena_path, 64, 4096)
        .expect("create arena");
    let pools: Vec<_> = (0..2)
        .map(|s| ctx.enable_shard_slot_recycling(s, 8).expect("shard pool"))
        .collect();
    let loaders = DataLoader::sharded(
        Arc::new(IndexDataset { len: 64 }),
        DataLoaderConfig {
            batch_size: 4,
            num_workers: 2,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
        2,
    );
    let group = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(3)
        .device(DeviceId::Gpu(0))
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn_sharded(loaders)
        .expect("spawn sharded group");

    // 3 epochs × 16 interleaved batches; pause halfway so the producer is
    // alive and the ring holds a steady state of completed records.
    let (consumer, reached, go) = paused_consumer(&ctx, &endpoint, 24);
    reached
        .recv_timeout(Duration::from_secs(60))
        .expect("consumer reached the pause point");

    let scrape_ctx = TsContext::host_only();
    let deadline = Instant::now() + Duration::from_secs(30);
    let payload = loop {
        let p =
            scrape_trace(&scrape_ctx, &endpoint, 64, Duration::from_secs(5)).expect("trace scrape");
        if p.records.len() >= 8 {
            break p;
        }
        assert!(
            Instant::now() < deadline,
            "flight recorder never filled: {} record(s)",
            p.records.len()
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(payload.version, TRACE_VERSION);
    assert!(payload.now_ns > 0);

    let mut shards_seen = std::collections::BTreeSet::new();
    for r in &payload.records {
        assert!(r.complete, "last_n must only return completed records");
        shards_seen.insert(r.shard);
        // Every span is well-formed on the recorder's one clock.
        for &(kind, start, end) in &r.spans {
            assert!(
                SpanKind::from_u8(kind).is_some(),
                "unknown span kind {kind}"
            );
            assert!(0 < start && start <= end, "span {kind}: {start}..{end}");
        }
        // Producer side: monotonically ordered feeder → publish → ack.
        let fetch = span_of(r, SpanKind::Fetch);
        let h2d = span_of(r, SpanKind::H2d);
        let publish = span_of(r, SpanKind::Publish);
        let announce = span_of(r, SpanKind::Announce);
        let ack = span_of(r, SpanKind::Ack);
        assert!(fetch.1 <= publish.0, "fetch must end before publish opens");
        assert!(fetch.1 <= h2d.0, "H2D reads the fetched batch");
        assert!(publish.0 <= announce.0, "announce opens inside publishing");
        assert!(
            announce.1 <= ack.1,
            "the final ack lands after the announce"
        );
        assert!(ack.0 <= ack.1 && publish.0 <= ack.0, "ack opens at publish");
        // Consumer side, stitched onto the same (epoch, shard, seq) key
        // because the in-process consumer shares the context's recorder.
        let recv = span_of(r, SpanKind::Recv);
        let rebuild = span_of(r, SpanKind::Rebuild);
        let release = span_of(r, SpanKind::Release);
        assert!(
            recv.1 <= rebuild.0,
            "rebuild starts after the announce landed"
        );
        assert!(rebuild.1 <= release.0, "the trainer holds a rebuilt batch");
        assert!(release.1 <= ack.1, "the producer acks after the release");
        assert!(
            announce.0 <= recv.1,
            "the consumer cannot receive before the producer announces"
        );
    }
    assert_eq!(
        shards_seen.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "records must cover both shards"
    );

    go.send(()).unwrap();
    let consumed = consumer.join().expect("consumer thread");
    assert_eq!(consumed, 48, "3 epochs × 16 interleaved batches");
    let stats = group.join_shards().expect("group join");
    assert!(stats.iter().all(|s| s.bytes_staged > 0), "staging ran");
    // Zero-copy stayed intact with tracing enabled.
    for s in 0..2u32 {
        assert_eq!(
            ctx.metrics
                .counter(&format!("stage.s{s}.publish_copy_bytes"))
                .get(),
            0,
            "shard {s} copied payload bytes with tracing enabled"
        );
    }
    assert!(ctx.registry.is_empty());
    for pool in &pools {
        pool.drain();
    }
    assert_eq!(ctx.arena().unwrap().slots_in_use(), 0);
}

#[test]
fn watchdog_names_the_straggling_consumer_in_its_verdict() {
    // Stall injection: two consumers, one of which parks mid-batch
    // without acking. The producer's watchdog must classify the stall as
    // consumer-straggler, name the offending consumer id in its verdict,
    // and surface both through the scraped stats snapshot (verdict +
    // `watchdog.stalls.consumer` counter + the v3 uptime/snapshot
    // stamps).
    const STRAGGLER: u64 = 7777;
    let endpoint = ipc_endpoint("watchdog");
    let ctx = TsContext::host_only();
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(2)
        .watchdog_stall_multiple(1.0)
        // Admit the late-joining healthy consumer with a full replay
        // instead of parking it at the epoch barrier (which the paused
        // straggler would never let the stream reach).
        .rubberband_cutoff(1.0)
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(60)))
        .spawn(loader(64, 4, 0))
        .expect("spawn producer");

    // The straggler attaches first (with a pinned id), then a healthy
    // consumer that acks everything promptly — so once both saw the
    // stuck batch, only the straggler still owes its ack.
    let (slow, reached, go) = paused_consumer_with_id(&ctx, &endpoint, 4, Some(STRAGGLER));
    reached
        .recv_timeout(Duration::from_secs(60))
        .expect("straggler reached the pause point");
    // The straggler holds the window at its 4th batch; with the default
    // publish window the producer can run only a couple of batches
    // further, so 5 is as far as the healthy consumer can get.
    let (fast, fast_reached, fast_go) = paused_consumer(&ctx, &endpoint, 5);
    fast_reached
        .recv_timeout(Duration::from_secs(60))
        .expect("healthy consumer caught up");
    fast_go.send(()).unwrap();

    let scrape_ctx = TsContext::host_only();
    let stats = scrape_until(&scrape_ctx, &endpoint, Duration::from_secs(30), |s| {
        s.verdict.contains("consumer-straggler")
    });
    assert!(
        stats
            .verdict
            .contains(&format!("consumer-straggler consumer={STRAGGLER}")),
        "verdict must name the straggler: {:?}",
        stats.verdict
    );
    assert!(
        stats.counter("watchdog.stalls.consumer").unwrap_or(0) >= 1,
        "the stall must be counted"
    );
    assert!(stats.uptime_ns > 0, "v3 snapshots carry producer uptime");
    assert!(
        stats.snapshot_ns > 0,
        "v3 snapshots carry a monotonic snapshot stamp"
    );

    go.send(()).unwrap();
    let slow_consumed = slow.join().expect("straggler thread");
    let fast_consumed = fast.join().expect("healthy thread");
    assert_eq!(slow_consumed, 32, "2 epochs × 16 batches");
    assert_eq!(fast_consumed, 32);
    let final_stats = producer.join().expect("producer join");
    assert_eq!(final_stats.batches_published, 32);
    assert_eq!(final_stats.consumers_detached, 0);
}
