//! Crash-and-resume over real OS processes: a **logged** sharded producer
//! in this process, three consumer processes (fork/exec of this test
//! binary) over `ipc://` sockets and a shared-memory arena —
//!
//! * a **witness** with no group, attached from the start: its transcript
//!   is the uninterrupted reference stream (and it proves live batches
//!   stay arena-backed, zero-copy);
//! * a **victim** in consumer group `trainers`, attached from the start,
//!   `SIGKILL`ed mid-epoch-1 — no Leave, no Drop, no flush: the worst
//!   case the durable log exists for;
//! * a **resume** process joining the *same group* after the kill: the
//!   producer replays from the group's persisted cursor (shed pins come
//!   off the log as streamed frames) and splices it onto the live stream.
//!
//! Acceptance (ISSUE): victim + resume transcripts, deduplicated on
//! `(epoch, shard, seq)`, must equal the witness transcript **exactly**
//! — same identities, same payload checksums, no holes — while the
//! producer side stays zero-copy (`stage.s*.publish_copy_bytes == 0`)
//! and rubberband pins for logged batches are shed (arena occupancy stays
//! well under the whole-epoch pin footprint).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, ProducerConfig, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::Tensor;

const SAMPLES: usize = 160;
const BATCH_SIZE: usize = 4;
const SHARDS: usize = 2;
const EPOCHS: u64 = 3;
/// Batches per epoch across both shards.
const PER_EPOCH: u64 = (SAMPLES / BATCH_SIZE) as u64; // 40
/// Kill the victim once it has written this many batch lines: one full
/// epoch plus half of epoch 1.
const KILL_AFTER: u64 = PER_EPOCH + PER_EPOCH / 2; // 60

/// `label == index`, field encodes the index: batches are deterministic
/// and checksummable across processes.
struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }

    fn encoded_sample_bytes(&self) -> usize {
        4
    }

    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(
            &[raw.index as f32, raw.index as f32 * 2.0],
            &[2],
            DeviceId::Cpu,
        )?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }

    fn name(&self) -> &str {
        "log-replay-mp-index"
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a, stable across processes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Consumer-process body. Role knobs: `group` attaches as that consumer
/// group; `require_shm` asserts every payload is arena-backed (only valid
/// for consumers attached from batch zero — replayed history arrives as
/// streamed frames by design). Every line is flushed so the parent can
/// observe progress (and kill mid-write) and nothing is lost to stdio
/// buffers on SIGKILL.
fn run_consumer(group: Option<&str>, require_shm: bool) {
    let endpoint = std::env::var("TS_LRMP_ENDPOINT").expect("TS_LRMP_ENDPOINT");
    let out_path = std::env::var("TS_LRMP_OUT").expect("TS_LRMP_OUT");

    let mut builder = Consumer::builder()
        .recv_timeout(Duration::from_secs(30))
        .heartbeat_interval(Duration::from_millis(50));
    if let Some(g) = group {
        builder = builder.group(g);
    }
    let consumer = builder.connect(&endpoint).expect("consumer connect");
    assert_eq!(consumer.num_shards(), SHARDS);
    assert!(
        consumer.welcome().log.is_some(),
        "logged producer must advertise the log over ipc"
    );
    let joined_epoch = consumer.joined_epoch();

    let mut out = std::fs::File::create(&out_path).expect("result file");
    writeln!(out, "joined {joined_epoch}").unwrap();
    out.flush().unwrap();
    let mut consumed = 0u64;
    let mut consumer = consumer;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        if require_shm {
            assert!(
                batch.fields[0].storage().is_shared_memory(),
                "live field bytes must be arena-backed"
            );
            assert!(
                batch.labels.storage().is_shared_memory(),
                "live label bytes must be arena-backed"
            );
        }
        let labels: Vec<String> = batch
            .labels
            .to_vec_i64()
            .unwrap()
            .iter()
            .map(|l| l.to_string())
            .collect();
        let field_sum = checksum(&batch.fields[0].gather_bytes());
        let label_sum = checksum(&batch.labels.gather_bytes());
        writeln!(
            out,
            "batch {} {} {} {} {} {:016x} {:016x}",
            batch.epoch,
            batch.shard,
            batch.seq,
            batch.index_in_epoch,
            labels.join(","),
            field_sum,
            label_sum
        )
        .unwrap();
        out.flush().unwrap();
        consumed += 1;
        // Pace the stream so the producer's housekeeping sweeps (pin
        // shedding, retention) interleave with publishing instead of a
        // whole epoch landing between two sweeps.
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        consumer.stop_reason(),
        Some(tensorsocket::runtime::consumer::StopReason::End),
        "consumer must stop on a clean End from every shard"
    );
    assert!(consumed > 0, "consumed nothing");
    writeln!(out, "done {consumed}").unwrap();
    out.flush().unwrap();
}

/// One transcript line, keyed by identity, carrying the payload digests.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Line {
    labels: Vec<i64>,
    index: u64,
    field_sum: String,
    label_sum: String,
}

type Key = (u64, usize, u64); // (epoch, shard, seq)

/// Parses a transcript; `complete` additionally requires the trailing
/// `done` marker (the killed victim never writes one, and its final line
/// may be torn — torn lines are dropped, not errors).
fn parse_results(path: &std::path::Path, complete: bool) -> (u64, BTreeMap<Key, Line>) {
    let text = std::fs::read_to_string(path).expect("consumer results");
    let mut joined = 0u64;
    let mut lines: BTreeMap<Key, Line> = BTreeMap::new();
    let mut done = false;
    for line in text.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["joined", e] => joined = e.parse().unwrap(),
            ["batch", epoch, shard, seq, index, labels, fsum, lsum] => {
                lines.insert(
                    (
                        epoch.parse().unwrap(),
                        shard.parse().unwrap(),
                        seq.parse().unwrap(),
                    ),
                    Line {
                        labels: labels.split(',').map(|l| l.parse().unwrap()).collect(),
                        index: index.parse().unwrap(),
                        field_sum: fsum.to_string(),
                        label_sum: lsum.to_string(),
                    },
                );
            }
            ["done", _] => done = true,
            _ if !complete => {} // torn tail of a SIGKILLed writer
            _ => panic!("unparsable result line: {line}"),
        }
    }
    if complete {
        assert!(done, "consumer did not finish cleanly: {text}");
    }
    (joined, lines)
}

fn count_batch_lines(path: &std::path::Path) -> u64 {
    match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| l.starts_with("batch ")).count() as u64,
        Err(_) => 0,
    }
}

#[test]
fn log_replay_multi_process_kill9_group_resume() {
    match std::env::var("TS_LRMP_ROLE").as_deref() {
        Ok("witness") => return run_consumer(None, true),
        Ok("victim") => return run_consumer(Some("trainers"), false),
        Ok("resume") => return run_consumer(Some("trainers"), false),
        _ => {}
    }
    let tag = std::process::id();
    let tmp = std::env::temp_dir();
    let endpoint = format!(
        "ipc://{}",
        tmp.join(format!("ts-lrmp-{tag}.sock")).display()
    );
    let arena_path = tmp.join(format!("ts-lrmp-{tag}.arena"));
    let log_dir = tmp.join(format!("ts-lrmp-{tag}.log"));
    let _ = std::fs::remove_dir_all(&log_dir);
    let out_witness = tmp.join(format!("ts-lrmp-{tag}-witness.txt"));
    let out_victim = tmp.join(format!("ts-lrmp-{tag}-victim.txt"));
    let out_resume = tmp.join(format!("ts-lrmp-{tag}-resume.txt"));

    let ctx = TsContext::host_only();
    let loaders = DataLoader::sharded(
        Arc::new(IndexDataset { len: SAMPLES }),
        DataLoaderConfig {
            batch_size: BATCH_SIZE,
            num_workers: 0,
            shuffle: true,
            seed: 17,
            drop_last: true,
            ..Default::default()
        },
        SHARDS,
    );
    // The arena is sized well below a whole run but above one epoch's
    // worth of pins: if logged pins were NOT shed, epoch-deep pinning
    // (20 batches × 2 tensors × 2 shards = 80 slots) would saturate it.
    let group = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: endpoint.clone(),
            epochs: EPOCHS,
            rubberband_cutoff: 1.0,
            // Fast kill detection: the victim dies with no Leave; only a
            // missed heartbeat removes it from the ack window.
            heartbeat_timeout: Duration::from_millis(1500),
            first_consumer_timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        })
        .arena_sized(&arena_path, 96, 4096)
        .log(&log_dir)
        .spawn_sharded(loaders)
        .expect("spawn logged sharded group");
    let arena = group.arena().expect("builder provisioned arena").clone();

    // Sample arena occupancy for the whole run: the high-water mark is
    // the pin-shedding acceptance signal.
    let stop_sampling = Arc::new(AtomicBool::new(false));
    let max_in_use = Arc::new(AtomicUsize::new(0));
    let sampler = {
        let arena = arena.clone();
        let stop = stop_sampling.clone();
        let max = max_in_use.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                max.fetch_max(arena.slots_in_use(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let exe = std::env::current_exe().expect("test binary path");
    let spawn_role = |role: &str, out: &std::path::Path| {
        std::process::Command::new(&exe)
            .args([
                "--exact",
                "log_replay_multi_process_kill9_group_resume",
                "--test-threads=1",
            ])
            .env("TS_LRMP_ROLE", role)
            .env("TS_LRMP_ENDPOINT", &endpoint)
            .env("TS_LRMP_OUT", out)
            .spawn()
            .expect("spawn consumer process")
    };
    let mut witness = spawn_role("witness", &out_witness);
    let mut victim = spawn_role("victim", &out_victim);

    // Let the victim get one epoch plus half of the next, then SIGKILL:
    // no Leave, no Drop, un-acked tail, torn final write all allowed.
    let kill_deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        if count_batch_lines(&out_victim) >= KILL_AFTER {
            victim.kill().expect("SIGKILL victim");
            break;
        }
        assert!(
            std::time::Instant::now() < kill_deadline,
            "victim never reached {KILL_AFTER} batches"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim_status = victim.wait().expect("wait victim");
    assert!(
        !victim_status.success(),
        "victim was SIGKILLed; its exit must not be clean"
    );

    // Same group, new process: resumes from the persisted cursor.
    let mut resume = spawn_role("resume", &out_resume);

    let witness_status = witness.wait().expect("wait witness");
    assert!(witness_status.success(), "witness failed: {witness_status}");
    let resume_status = resume.wait().expect("wait resume");
    assert!(resume_status.success(), "resume failed: {resume_status}");

    let stats = group.join_shards().expect("group join");
    stop_sampling.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    assert_eq!(stats.len(), SHARDS);
    for (shard, st) in stats.iter().enumerate() {
        assert_eq!(st.epochs_completed, EPOCHS, "shard {shard}");
        assert_eq!(
            st.batches_published,
            EPOCHS * PER_EPOCH / SHARDS as u64,
            "shard {shard} published its partition"
        );
    }

    // --- Acceptance: byte-identical splice across the crash. ---
    let (joined_w, witness_lines) = parse_results(&out_witness, true);
    let (_, victim_lines) = parse_results(&out_victim, false);
    let (_, resume_lines) = parse_results(&out_resume, true);
    assert_eq!(joined_w, 0, "witness must observe the run from epoch 0");
    assert_eq!(witness_lines.len() as u64, EPOCHS * PER_EPOCH);
    assert!(
        victim_lines.len() as u64 >= KILL_AFTER,
        "victim transcript too short"
    );
    assert!(!resume_lines.is_empty(), "resume consumed nothing");

    // Merge victim + resume on (epoch, shard, seq). Overlap is legal
    // (the un-acked tail is re-delivered) but must be value-identical.
    let mut merged: BTreeMap<Key, Line> = BTreeMap::new();
    for (key, line) in victim_lines.iter().chain(resume_lines.iter()) {
        if let Some(prev) = merged.get(key) {
            assert_eq!(prev, line, "re-delivered batch diverged at {key:?}");
        } else {
            merged.insert(*key, line.clone());
        }
    }
    assert_eq!(
        merged, witness_lines,
        "victim + resume must reproduce the witness stream exactly \
         (no holes, identical payload checksums)"
    );

    // --- Producer-side invariants. ---
    assert!(
        ctx.metrics.counter("producer.replay_requests").get() >= 1,
        "the resuming group member must have requested a replay plan"
    );
    assert!(
        ctx.metrics.counter("replay.log_batches").get() > 0,
        "part of the catch-up must have been served from the durable log"
    );
    assert_eq!(ctx.metrics.counter("log.append_errors").get(), 0);
    for shard in 0..SHARDS {
        assert_eq!(
            ctx.metrics
                .counter(&format!("stage.s{shard}.publish_copy_bytes"))
                .get(),
            0,
            "shard {shard}: the log tee must not put copies on the publish path"
        );
        assert!(
            ctx.metrics
                .counter(&format!("stage.s{shard}.log_append_bytes"))
                .get()
                > 0,
            "shard {shard}: spiller appended nothing"
        );
    }
    // Pin shedding: whole-epoch pinning would hold ~80 slots; logged
    // batches must have been shed well below that.
    let peak = max_in_use.load(Ordering::Relaxed);
    assert!(
        peak <= 60,
        "arena peak {peak} slots — logged rubberband pins were not shed \
         (whole-epoch pinning is ~80)"
    );
    // The arena refcounts are cross-process: a SIGKILLed consumer takes
    // its in-flight mapped batch's references to the grave (2 slots per
    // batch, at most the one being read plus one being materialized).
    // That bounded residue is the victim's, not a producer leak — anything
    // beyond it is.
    let residue = arena.slots_in_use();
    assert!(
        residue <= 4,
        "{residue} slots still referenced — more than the killed victim's \
         in-flight batches can account for"
    );

    for path in [&out_witness, &out_victim, &out_resume] {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_dir_all(&log_dir);
}
