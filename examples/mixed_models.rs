//! Mixed-workload collocation (§3.3.3): a light and a heavy model share
//! one TensorSocket; the batch buffer keeps them within N batches of each
//! other, so the light model yields time to the heavy one instead of
//! racing ahead.
//!
//! ```text
//! cargo run --release --example mixed_models
//! ```
//!
//! "Training" here is real CPU work per batch (deliberately asymmetric),
//! standing in for GPU kernels.

use std::sync::Arc;
use std::time::Instant;
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_tensor::ops;

fn main() {
    let ctx = TsContext::host_only();
    let dataset = Arc::new(SyntheticImageDataset::new(768, 48, 48, 5).with_encoded_len(2_048));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 3,
            shuffle: false,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .epochs(1)
        .rubberband_cutoff(1.0)
        .buffer_size(2) // the paper's default N
        .spawn(loader)
        .expect("spawn producer");

    // model complexity ≈ busy-work units per sample
    let train = |name: &'static str, work_units: u64| {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .connect("inproc://tensorsocket")
                .expect("connect");
            let started = Instant::now();
            let mut max_lag: i64 = 0;
            let mut steps = Vec::new();
            for batch in consumer.by_ref() {
                let batch = batch.expect("clean stream");
                let step_start = Instant::now();
                // "forward/backward pass": real work proportional to model size
                let mut acc = 0u64;
                for _ in 0..batch.batch_size() {
                    acc = acc.wrapping_add(ops::busy_work(batch.seq, work_units));
                }
                std::hint::black_box(acc);
                steps.push(step_start.elapsed());
                max_lag = max_lag.max(consumer_lag(&batch.seq));
            }
            let total = started.elapsed().as_secs_f64();
            let mean_step =
                steps.iter().map(|d| d.as_secs_f64()).sum::<f64>() / steps.len().max(1) as f64;
            println!(
                "[{name}] {} batches in {total:.2}s (mean step {:.1} ms) → {:.0} samples/s",
                steps.len(),
                mean_step * 1e3,
                consumer.samples_consumed() as f64 / total,
            );
            (consumer.samples_consumed(), total)
        })
    };

    let light = train("light model", 2_000);
    let heavy = train("heavy model", 40_000);
    let (n_light, t_light) = light.join().expect("light");
    let (n_heavy, t_heavy) = heavy.join().expect("heavy");
    producer.join().expect("producer");

    assert_eq!(n_light, n_heavy, "lockstep: same samples for both");
    // The buffer bounds the drift: the light model cannot finish the epoch
    // long before the heavy one — both end within ~a batch of each other.
    let gap = (t_light - t_heavy).abs();
    println!("epoch end gap between models: {gap:.3}s");
    assert!(
        gap < t_heavy * 0.25,
        "light model should be held to the heavy model's pace (gap {gap:.2}s)"
    );
    println!("ok: the batch buffer balanced a light and a heavy model on one socket");
}

fn consumer_lag(_seq: &u64) -> i64 {
    0 // placeholder for richer lag diagnostics; drift is enforced by the producer
}
