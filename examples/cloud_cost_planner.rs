//! Cloud cost planning with and without shared data loading (Figure 1,
//! Table 2, §4.3's "halve the cloud costs" claim).
//!
//! ```text
//! cargo run --release --example cloud_cost_planner
//! ```
//!
//! Combines the instance catalog with the cluster simulator: first find
//! the vCPU count a workload needs with each loading discipline, then ask
//! the catalog what that costs.

use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_cloud::{cheapest_sustaining, figure1_matrix, Provider, Requirement, GPU_AXIS, VCPU_AXIS};
use ts_experiments::fig11::run_config;
use ts_sim::GpuSharing;

fn main() {
    // ---- Figure 1: the ratio landscape -------------------------------------
    println!("vCPU x GPU instance heatmap (AWS):\n");
    print!("{:>6}", "vCPU");
    for g in GPU_AXIS {
        print!("{g:>5}");
    }
    println!("  <- GPUs");
    for &v in VCPU_AXIS.iter().rev() {
        print!("{v:>6}");
        for &g in &GPU_AXIS {
            let count = figure1_matrix(Provider::Aws)
                .iter()
                .find(|c| c.vcpus == v && c.gpus == g)
                .map(|c| c.count)
                .unwrap_or(0);
            if count == 0 {
                print!("{:>5}", ".");
            } else {
                print!("{count:>5}");
            }
        }
        println!();
    }

    // ---- which instance sustains 4-way CLMR? -------------------------------
    // Simulate the workload at each g5 size and find the smallest size whose
    // throughput is within 5% of the best.
    println!("\n4-way CLMR training on a single A10G:");
    let best = run_config(32, GpuSharing::Mps, nonshared_strategy()).mean_samples_per_s();
    let needed = |shared: bool| -> u32 {
        for vcpus in [8u32, 16, 32] {
            let strat = if shared {
                tensorsocket_strategy(0)
            } else {
                nonshared_strategy()
            };
            let rate = run_config(vcpus, GpuSharing::Mps, strat).mean_samples_per_s();
            println!(
                "  {} {:>2} vCPUs -> {rate:.0} samples/s per model",
                if shared { "shared:    " } else { "non-shared:" },
                vcpus
            );
            if rate >= best * 0.95 {
                return vcpus;
            }
        }
        32
    };
    let vcpus_ns = needed(false);
    let vcpus_ts = needed(true);
    println!("  -> needs {vcpus_ns} vCPUs without sharing, {vcpus_ts} with TensorSocket");

    // ---- what does that cost? ----------------------------------------------
    let req = Requirement {
        vcpus: 0,
        gpus: 1,
        vram_gb: 24,
        gpu_model: Some("A10G"),
    };
    let pick =
        |vcpus: u32| cheapest_sustaining(Requirement { vcpus, ..req }).expect("catalog covers g5");
    let without = pick(vcpus_ns);
    let with = pick(vcpus_ts);
    let saving = 1.0 - with.hourly_usd / without.hourly_usd;
    println!(
        "\n  without sharing: {:<12} ${:.3}/h\n  with sharing:    {:<12} ${:.3}/h\n  saving: {:.0}%",
        without.name,
        without.hourly_usd,
        with.name,
        with.hourly_usd,
        saving * 100.0
    );
    assert!(
        saving > 0.4,
        "expected the paper's ~50% saving, got {saving:.2}"
    );
    println!("\nok: shared loading halves the instance cost for this workload");
}
