//! Live pipeline observability: per-stage latency histograms scraped
//! over the control plane, the way `ts-top` does it.
//!
//! ```text
//! cargo run --release --example observability                 # quick demo
//! cargo run --release --example observability -- --serve 30   # serve 30s for ts-top
//! cargo run --release --example observability -- --serve 30 --endpoint ipc:///tmp/obs.sock
//! ```
//!
//! The demo spawns the paper's full producer shape — two sharded
//! feeder+publish pipelines staging batches through the GPU slab
//! rotation — plus a consumer "training" off it, then scrapes the
//! producer **from a separate context over the `ipc://` socket** and
//! renders the per-stage latency histograms. Nothing in the scrape path
//! touches process memory: what prints below is exactly what
//! `ts-top <endpoint>` shows from another process.
//!
//! `--serve <secs>` keeps the topology alive so you can point the real
//! CLI at it:
//!
//! ```text
//! cargo run --release --example observability -- --serve 60 &
//! ts-top ipc:///tmp/ts-obs-<pid>.sock            # live table, 1s refresh
//! ts-top --json ipc:///tmp/ts-obs-<pid>.sock     # one-shot snapshot
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use tensorsocket::{scrape_stats, Consumer, Producer, StatsPayload, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_device::DeviceId;
use ts_metrics::table::fmt_num;
use ts_metrics::Table;

const SHARDS: usize = 2;

fn parse_args() -> (Option<u64>, Option<String>) {
    let mut serve = None;
    let mut endpoint = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serve" => {
                let secs = it.next().expect("--serve takes seconds");
                serve = Some(secs.parse().expect("--serve takes an integer"));
            }
            "--endpoint" => endpoint = Some(it.next().expect("--endpoint takes a URI")),
            other => panic!("unknown arg {other} (usage: [--serve <secs>] [--endpoint <uri>])"),
        }
    }
    (serve, endpoint)
}

fn us(ns: u64) -> String {
    fmt_num(ns as f64 / 1000.0)
}

/// Renders the stage-latency portion of a snapshot, `ts-top`-style.
fn print_stage_table(stats: &StatsPayload) {
    let mut lat = Table::new(
        "Stage latency (us)",
        &["stage", "count", "p50", "p99", "p99.9", "max"],
    );
    for (name, h) in &stats.histograms {
        lat.row(&[
            name.clone(),
            h.count.to_string(),
            us(h.p50()),
            us(h.p99()),
            us(h.p999()),
            us(h.max),
        ]);
    }
    print!("{}", lat.render());
}

fn main() {
    let (serve, endpoint_override) = parse_args();
    let endpoint = endpoint_override.unwrap_or_else(|| {
        format!(
            "ipc://{}",
            std::env::temp_dir()
                .join(format!("ts-obs-{}.sock", std::process::id()))
                .display()
        )
    });

    // The paper's producer shape: a simulated GPU so batches go through
    // the staging slab rotation (staging.* histograms), two shard
    // pipelines (per-shard stage.s<N>.* histograms), and a
    // builder-provisioned shm arena so publishing runs the zero-copy
    // leased path (`stage.s<N>.publish_copy_bytes` stays 0 — the CI
    // smoke asserts exactly that on the scraped snapshot).
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let arena_path = std::env::temp_dir().join(format!("ts-obs-{}.arena", std::process::id()));
    let dataset = Arc::new(SyntheticImageDataset::imagenet_like(512, 0));
    let loaders = DataLoader::sharded(
        dataset,
        DataLoaderConfig {
            batch_size: 16,
            num_workers: 2,
            ..Default::default()
        },
        SHARDS,
    );
    // Enough epochs to outlive any --serve window; we abort when done.
    let epochs = serve.map_or(8, |_| 100_000);
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(&endpoint)
        .epochs(epochs)
        .device(DeviceId::Gpu(0))
        .heartbeat_timeout(Duration::from_secs(30))
        .first_consumer_timeout(Some(Duration::from_secs(120)))
        .arena(&arena_path)
        .spawn_sharded(loaders)
        .expect("spawn sharded producer");
    println!("producer serving on {endpoint} ({SHARDS} shards, GPU staging)");

    // A consumer "training" off the stream: each batch costs a simulated
    // optimizer step, which is what gives the wait/inter-arrival
    // histograms realistic shape.
    let consumer_ctx = ctx.clone();
    let consumer_endpoint = endpoint.clone();
    let consumer = std::thread::spawn(move || {
        let mut consumer = Consumer::builder()
            .context(&consumer_ctx)
            .recv_timeout(Duration::from_secs(60))
            .connect(&consumer_endpoint)
            .expect("consumer connect");
        let mut consumed = 0u64;
        for batch in consumer.by_ref() {
            if batch.is_err() {
                break; // producer aborted at the end of --serve
            }
            std::thread::sleep(Duration::from_micros(500)); // train step
            consumed += 1;
        }
        consumed
    });

    if let Some(secs) = serve {
        println!("serving for {secs}s — attach with: ts-top {endpoint}");
        std::thread::sleep(Duration::from_secs(secs));
        producer.abort();
        let consumed = consumer.join().expect("consumer thread");
        println!("done: {consumed} batches consumed");
        return;
    }

    // Demo mode: scrape mid-stream from a context that shares nothing
    // with the pipeline — this snapshot crossed the ipc:// socket.
    std::thread::sleep(Duration::from_millis(750));
    let scrape_ctx = TsContext::host_only();
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = scrape_stats(&scrape_ctx, &endpoint, Duration::from_secs(5))
            .expect("scrape mid-stream");
        // Wait until every stage has reported at least once.
        // Per-shard names: each shard pipeline owns a staging engine.
        let warm = [
            "stage.s0.publish_ack_ns",
            "stage.s1.publish_ack_ns",
            "staging.s0.h2d_ns",
            "consumer.wait_ns",
        ]
        .iter()
        .all(|n| stats.histogram(n).is_some_and(|h| h.count > 0));
        if warm || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    println!("\n== scraped over the wire (stats v{}) ==\n", stats.version);
    print_stage_table(&stats);
    println!(
        "\nbatches published {} / consumed {} — acks pending on {} in-flight",
        stats.counter("producer.batches").unwrap_or(0),
        stats.counter("consumer.batches").unwrap_or(0),
        stats
            .gauges()
            .iter()
            .filter(|(n, _)| n.ends_with("pin_depth"))
            .map(|(_, v)| *v as u64)
            .sum::<u64>(),
    );

    let consumed = consumer.join().expect("consumer thread");
    let shard_stats = producer.join_shards().expect("producer join");
    println!(
        "clean shutdown: {} batches consumed, shards published {:?}",
        consumed,
        shard_stats
            .iter()
            .map(|s| s.batches_published)
            .collect::<Vec<_>>()
    );
}
