//! Sharing generative tasks online (§3.3.4, Figure 7): DALL-E-2-style
//! training needs CLIP embeddings of every image–caption pair. Computed
//! per-process they are redundant; moved into the producer's loading
//! pipeline they are computed **once** and shared with every diffusion
//! trainer.
//!
//! ```text
//! cargo run --release --example generative_pipeline
//! ```
//!
//! The "CLIP encoder" here is a deterministic projection with real CPU
//! cost; the example measures how much encoder work sharing saves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{
    DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample, SyntheticCaptionDataset,
};
use ts_device::DeviceId;
use ts_tensor::{ops, Tensor};

/// Counts encoder invocations so we can show the sharing effect.
static CLIP_CALLS: AtomicU64 = AtomicU64::new(0);

/// A frozen "CLIP" encoder: image + caption → 64-d embedding.
fn clip_encode(image: &Tensor, caption: &Tensor) -> Tensor {
    CLIP_CALLS.fetch_add(1, Ordering::Relaxed);
    let img = image.gather_bytes();
    let cap = caption.gather_bytes();
    let mut emb = [0f32; 64];
    // deterministic mixing with genuine per-sample cost
    for (i, slot) in emb.iter_mut().enumerate() {
        let h = ops::fnv1a(&img[i * img.len() / 64..(i + 1) * img.len() / 64])
            ^ ops::fnv1a(&cap[i % cap.len().max(1)..]);
        *slot = (h % 10_000) as f32 / 10_000.0;
    }
    Tensor::from_f32(&emb, &[64], DeviceId::Cpu).expect("embedding")
}

/// The dataset with the encoder folded into decode — this is what "moving
/// the embedding generation into the producer" means: it becomes part of
/// the shared loading pipeline.
struct EmbeddedCaptionDataset {
    inner: SyntheticCaptionDataset,
}

impl Dataset for EmbeddedCaptionDataset {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        self.inner.get(index)
    }
    fn encoded_sample_bytes(&self) -> usize {
        self.inner.encoded_sample_bytes()
    }
    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let mut dec = self.inner.decode(raw)?;
        let embedding = clip_encode(&dec.fields[0], &dec.fields[1]);
        // the diffusion prior trains on (embedding, caption tokens)
        dec.fields = vec![embedding, dec.fields[1].clone()];
        Ok(dec)
    }
    fn name(&self) -> &str {
        "cc3m+clip"
    }
}

fn main() {
    let samples = 512usize;
    let consumers = 3usize;
    let ctx = TsContext::host_only();
    let dataset = Arc::new(EmbeddedCaptionDataset {
        inner: SyntheticCaptionDataset::new(samples, 11),
    });
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: false,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .epochs(1)
        .rubberband_cutoff(1.0)
        .spawn(loader)
        .expect("spawn producer");

    let handles: Vec<_> = (0..consumers)
        .map(|i| {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                let mut c = Consumer::builder()
                    .context(&ctx)
                    .connect("inproc://tensorsocket")
                    .expect("connect");
                let mut loss_proxy = 0f32;
                for batch in c.by_ref() {
                    let batch = batch.expect("clean stream");
                    // diffusion-prior "training step" over the embeddings
                    let emb = &batch.fields[0];
                    loss_proxy += ops::mean_f32(&emb.contiguous()).unwrap_or(0.0);
                }
                println!(
                    "[diffusion-{i}] consumed {} samples, loss proxy {loss_proxy:.3}",
                    c.samples_consumed()
                );
                c.samples_consumed()
            })
        })
        .collect();
    let consumed: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    producer.join().expect("producer");

    let calls = CLIP_CALLS.load(Ordering::Relaxed);
    println!("CLIP encoder invocations: {calls} for {consumers} trainers x {samples} samples");
    assert!(consumed.iter().all(|&n| n == samples as u64));
    assert_eq!(
        calls as usize, samples,
        "the encoder ran once per sample, not once per trainer per sample"
    );
    println!(
        "ok: sharing saved {} encoder passes ({}x reduction)",
        samples * (consumers - 1),
        consumers
    );
}
