//! Durable-log replay smoke: a crash-free walk through the full
//! late-join story — a **logged** sharded producer over `ipc://`, an
//! attached-from-the-start witness, and a **fresh consumer group** that
//! attaches mid-epoch-2 and must still see the run *from batch zero*,
//! courtesy of the batch log.
//!
//! ```text
//! cargo run --release --example replay_smoke
//! ```
//!
//! What it proves (and asserts — CI runs this binary as a smoke test):
//!
//! * the producer tees every published batch into the `ts-log` segments
//!   off the hot path (`stage.s<N>.log_append_bytes` grows, publishing
//!   stays zero-copy);
//! * a consumer that names a group (`.group("smoke")`) and attaches long
//!   after epoch 0 is gone replays the missing range **from the log** —
//!   the rubberband window here is the paper's 2%, far too small to
//!   cover a whole epoch from pins;
//! * the replayed prefix splices onto the live stream with no seam: the
//!   late group's transcript is identical, payload checksums included,
//!   to the witness's uninterrupted one.
//!
//! The crash variant of this story (SIGKILL mid-epoch, same group
//! resumes from the persisted cursor) runs as a fork/exec test in
//! `tests/log_replay_multi_process.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::{Consumer, Producer, ProducerConfig, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_tensor::ops;

const SHARDS: usize = 2;
const EPOCHS: u64 = 3;
const SAMPLES: usize = 96;
const BATCH: usize = 8;
const PER_EPOCH: u64 = (SAMPLES / BATCH) as u64; // both shards together

/// One consumed batch: identity plus payload digests.
type Seen = (u64, usize, u64, u64, u64, u64);

fn consume_all(
    endpoint: &str,
    group: Option<&str>,
    pace: Duration,
    on_epoch1: Option<Arc<AtomicBool>>,
) -> Vec<Seen> {
    let mut builder = Consumer::builder().recv_timeout(Duration::from_secs(60));
    if let Some(g) = group {
        builder = builder.group(g);
    }
    let mut consumer = builder.connect(endpoint).expect("consumer connect");
    assert!(
        consumer.welcome().log.is_some(),
        "logged producer must advertise the log in its WELCOME"
    );
    let mut seen = Vec::new();
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        if batch.epoch >= 1 {
            if let Some(flag) = &on_epoch1 {
                flag.store(true, Ordering::Release);
            }
        }
        seen.push((
            batch.epoch,
            batch.shard,
            batch.seq,
            batch.index_in_epoch,
            ops::checksum(&batch.fields[0]),
            ops::checksum(&batch.labels),
        ));
        std::thread::sleep(pace);
    }
    assert_eq!(
        consumer.stop_reason(),
        Some(tensorsocket::runtime::consumer::StopReason::End)
    );
    seen
}

fn main() {
    let pid = std::process::id();
    let tmp = std::env::temp_dir();
    let endpoint = format!(
        "ipc://{}",
        tmp.join(format!("ts-replay-smoke-{pid}.sock")).display()
    );
    let arena_path = tmp.join(format!("ts-replay-smoke-{pid}.arena"));
    let log_dir = tmp.join(format!("ts-replay-smoke-{pid}.log"));
    let _ = std::fs::remove_dir_all(&log_dir);

    let ctx = TsContext::host_only();
    let loaders = DataLoader::sharded(
        Arc::new(SyntheticImageDataset::new(SAMPLES, 16, 16, 42)),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: 0,
            shuffle: true,
            seed: 42,
            drop_last: true,
            ..Default::default()
        },
        SHARDS,
    );
    let producer = Producer::builder()
        .context(&ctx)
        .config(ProducerConfig {
            endpoint: endpoint.clone(),
            epochs: EPOCHS,
            // The paper's 2% join window: pins cannot cover a late join —
            // only the durable log can.
            rubberband_cutoff: 0.02,
            first_consumer_timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        })
        .arena_sized(&arena_path, 64, 32 << 10)
        .log(&log_dir)
        .spawn_sharded(loaders)
        .expect("spawn logged sharded producer");
    println!(
        "logged producer on {endpoint} ({SHARDS} shards, log at {})",
        log_dir.display()
    );

    // Witness: attached from batch zero, paced like a training loop so
    // the run is long enough for a genuinely late join.
    let into_epoch1 = Arc::new(AtomicBool::new(false));
    let witness = {
        let endpoint = endpoint.clone();
        let flag = into_epoch1.clone();
        std::thread::spawn(move || {
            consume_all(&endpoint, None, Duration::from_millis(2), Some(flag))
        })
    };

    // The late group attaches once the witness is into epoch 1 — by the
    // time its admission lands at the epoch 2 boundary, epochs 0 and 1
    // exist nowhere but the log.
    while !into_epoch1.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(2));
    }
    println!("witness into epoch 1 — attaching fresh group \"smoke\"");
    let late = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || consume_all(&endpoint, Some("smoke"), Duration::ZERO, None))
    };

    let full = witness.join().expect("witness thread");
    let replayed_stream = late.join().expect("late group thread");
    producer.join_shards().expect("producer join");

    assert_eq!(
        full.len() as u64,
        EPOCHS * PER_EPOCH,
        "witness missed batches"
    );
    assert_eq!(
        replayed_stream, full,
        "late group's stream must be identical to the witness's, from batch zero"
    );

    let from_log = ctx.metrics.counter("replay.log_batches").get();
    let appended: u64 = (0..SHARDS)
        .map(|s| {
            ctx.metrics
                .counter(&format!("stage.s{s}.log_append_bytes"))
                .get()
        })
        .sum();
    let copies: u64 = (0..SHARDS)
        .map(|s| {
            ctx.metrics
                .counter(&format!("stage.s{s}.publish_copy_bytes"))
                .get()
        })
        .sum();
    assert!(from_log > 0, "nothing was served from the log");
    assert!(appended > 0, "the spiller appended nothing");
    assert_eq!(copies, 0, "the log tee must not copy on the publish path");

    let _ = std::fs::remove_dir_all(&log_dir);
    println!(
        "replay smoke OK: {} live batches, {} replayed from the log ({} KiB spilled), publish copies 0",
        full.len(),
        from_log,
        appended >> 10
    );
}
