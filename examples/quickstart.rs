//! Quickstart: split a training script into a producer and consumers
//! (Figure 3 of the paper) — with the unified builder API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The conventional script iterates a `DataLoader` directly; with
//! TensorSocket the loader moves into a [`Producer`] and each training
//! process swaps its loop source for a [`Consumer`] — one line each way:
//!
//! ```no_run
//! # use tensorsocket::{Producer, Consumer};
//! # use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
//! # use std::sync::Arc;
//! # let loader = DataLoader::new(Arc::new(SyntheticImageDataset::imagenet_like(64, 0)), DataLoaderConfig::default());
//! // producer.py — owns the loader
//! let producer = Producer::builder().endpoint("ipc:///tmp/ts.sock").spawn(loader)?;
//!
//! // consumer.py — literally only the endpoint
//! for batch in Consumer::builder().connect("ipc:///tmp/ts.sock")? {
//!     let batch = batch?; // ... training step ...
//! }
//! # producer.join()?;
//! # Ok::<(), tensorsocket::TsError>(())
//! ```
//!
//! The consumer is *not* configured with the shard count, the arena path,
//! slot depths or the batch schema: a versioned HELLO/WELCOME handshake
//! on the control channel reports all of it, and mismatches surface as
//! typed `HandshakeError`s instead of hangs. The producer side likewise
//! auto-creates and auto-sizes its shared-memory arena and recycling slot
//! pool from the loader's own geometry (`.arena(path)`), instead of
//! asking you to compute slot counts.
//!
//! # Migrating from the legacy API
//!
//! The pre-builder types still compile behind `#[deprecated]` shims that
//! delegate to the same engine; move off them mechanically:
//!
//! | legacy                                                        | builder |
//! |---------------------------------------------------------------|---------|
//! | `TensorProducer::spawn(loader, &ctx, cfg)`                    | `Producer::builder().context(&ctx).config(cfg).spawn(loader)` |
//! | `ShardedProducerGroup::spawn(loaders, &ctx, cfg)`             | `Producer::builder().context(&ctx).config(cfg).spawn_sharded(loaders)` |
//! | `ctx.create_arena(path, nslots, slot_size)` + `ctx.enable_slot_recycling(depth)` | `.arena(path)` (auto-sized) or `.arena_sized(path, nslots, slot_size)` |
//! | `TensorConsumer::connect(&ctx, ConsumerConfig { endpoint, .. })` | `Consumer::builder().context(&ctx).connect(endpoint)` |
//! | `ConsumerConfig { shards: N, .. }`                            | nothing — the handshake learns `N` (assert with `.shards(N)`) |
//! | `ctx.open_arena(path)` before connecting                      | nothing — the handshake advertises the arena |
//! | `for batch in consumer { .. }` then check `stop_reason()`     | `for batch in consumer { let batch = batch?; .. }` |
//!
//! Config structs (`ProducerConfig`, `ConsumerConfig`) are still public —
//! `.config(cfg)` seeds a builder from one — and each knob also has a
//! dedicated builder method. A `Producer` spawned from one source is a
//! plain pipeline; from `N` sources it is the coordinated sharded group
//! (`shards = 1` is just the degenerate case of the same facade).
//!
//! # Endpoint URIs
//!
//! The endpoint passed to `.endpoint(..)` / `.connect(..)` selects the
//! transport; nothing else in the code changes. Every derived channel —
//! per-shard data/ctrl endpoints — comes from one scheme-aware
//! `ts_socket::EndpointMap`, which is also what the handshake's consumer
//! side uses, so the two sides cannot derive different layouts:
//!
//! | scheme                  | reaches                | data / ctrl channels      |
//! |-------------------------|------------------------|---------------------------|
//! | `inproc://name`         | threads in one process | `name/data`, `name/ctrl`  |
//! | `ipc:///path/to.sock`   | processes on one host  | `….sock.data`, `….sock.ctrl` |
//! | `tcp://host:port`       | other machines         | `port`, `port + 1`        |
//!
//! This example uses the default `inproc://tensorsocket` endpoint and runs
//! consumers as threads (sharing the producer's `TsContext` via
//! `.context(&ctx)`), which is the cheapest way to try the API. For
//! separate processes, see `examples/multi_process.rs`: an `ipc://`
//! endpoint plus `.arena(path)` on the producer — and *only* the
//! endpoint on the consumers.
//!
//! # Migrating from handshake v1 to v2 (multi-host)
//!
//! Handshake v2 keeps every v1 deployment working unchanged — a v1
//! consumer attaches to a v2 producer and vice versa (the v2 extensions
//! ride in trailing bytes a v1 decoder never reads). What v2 *adds* is
//! the multi-host data plane; migrate per deployment, not per codebase:
//!
//! | v1 deployment                                    | v2 |
//! |--------------------------------------------------|----|
//! | all shards derived from one base endpoint        | unchanged — `tcp://host:port` still derives `port + 2·shard` |
//! | shards must share one host/NIC                   | `.shard_endpoint(i, "tcp://other-host:port")` per shard; the WELCOME advertises the full map, consumers need **no** change |
//! | consumers must map the producer's shm arena      | negotiated per consumer: a consumer that cannot open the arena falls back to length-prefixed byte **streaming** on the same data socket, bit-identical to the shm stream |
//! | `ctx.open_arena(..)` failures at first batch     | typed at attach: `HandshakeError::ArenaMissing` (pinned `.payload_mode(Shm)`) or a clean streamed attach (unpinned) |
//! | no way to test the remote shape locally          | `.payload_mode(PayloadMode::Stream)` or `TS_FORCE_PAYLOAD_MODE=stream` forces streaming over any transport |
//!
//! Note one topology rule: shard 0's endpoint is the handshake endpoint
//! consumers hello at, so it comes from the *base* endpoint —
//! `.shard_endpoint(0, ..)` on a multi-shard group is a config error.
//!
//! # Pipeline tuning
//!
//! The producer runs as a two-stage pipeline: a feeder stage loads,
//! decodes and collates batches *ahead of the publish cursor* while the
//! publish stage stages, registers and announces them. The builder derives
//! every depth from the loader's hints; override only when needed:
//!
//! * `DataLoaderConfig::num_workers` — loader worker threads (this
//!   example uses 4). `0` collapses the pipeline into a serial producer;
//!   either way consumers see the identical batch stream.
//! * `DataLoaderConfig::prefetch_factor` — batches each worker keeps in
//!   flight; with `num_workers` it sizes the feeder's hand-off queue
//!   (override with `.pipeline_depth(n)`).
//! * `.arena(path)` — cross-process only: creates the shared-memory
//!   arena *and* the recycling slot pool, both sized from the loader's
//!   decoded sample geometry and the publish window, so steady-state
//!   publishing allocates nothing from the arena.
//!
//! # Multi-producer sharding
//!
//! On a many-GPU node one producer pipeline saturates one NUMA domain.
//! `.spawn_sharded(loaders)` runs N feeder+publish pipelines — one per
//! disjoint dataset shard (`DataLoader::sharded`) — in lockstep under an
//! epoch coordinator. Consumers need no change at all: the handshake
//! advertises the shard count and the consumer subscribes to every shard.
//!
//! **Ordering contract:** batches are delivered sorted by
//! `(epoch, shard, seq)` — round-robin across shards aligned at an epoch
//! boundary, exhausted shards dropping out on uneven tails — so every
//! consumer sees one bit-stable stream for a given `(seed, shard count)`
//! no matter how the shards race each other. With one shard the stream
//! is byte-identical to a plain producer's. The second act of `main`
//! below runs the same dataset through a 2-shard group.
//!
//! # Device staging
//!
//! The paper's producer stages every batch on GPU 0 before sharing it.
//! Set `.device(gpu)` and the producer stages through the device staging
//! subsystem (`ts-staging`): a pre-allocated VRAM **slab rotation** sized
//! from the publish window — so warmed-up staging performs *zero device
//! allocations* (check `ctx.devices.memory(gpu).alloc_count()`) — with
//! the H2D copy running on its own pipeline stage, overlapping the copy
//! of batch *n* with collation of *n + 1* and publishing of *n − 1*.
//! Tune it via `.staging(mode)` / `.staging_config(..)`:
//!
//! * mode — `Overlapped` (default), `Serial` (copy on the publish
//!   thread, still slab-pooled) or `Off` (legacy per-batch
//!   allocate+copy through `DeviceCtx::transfer`, which now models the
//!   same link copy time, so benchmark comparisons are apples-to-apples).
//!   Consumers receive byte-identical batches in all three; the
//!   `BENCH_staging.json` suite documents the overlap win.
//! * `slab_depth` / `queue_depth` — rotation size and copy-stage
//!   look-ahead, both derived from `buffer_size` when unset.
//!
//! Staging health is exported through `ctx.metrics`: counter
//! `staging.h2d_bytes`, gauges `staging.slab_occupancy`,
//! `staging.copy_queue_depth` and `staging.h2d_bytes_per_sec`. The third
//! act below runs a GPU-staged epoch and prints them.
//!
//! # Zero-copy publish
//!
//! With an arena bound (`.arena(path)`), publishing a batch moves **no
//! payload bytes**: the feeder leases an arena slot *before* collating
//! and decodes straight into it, so by the time the publish loop runs,
//! the bytes are already where consumers will map them — the announce is
//! pure metadata (an arena handle in a protocol frame). The contract
//! behind it is the **slot lease**: a leased slot is exclusively the
//! feeder's until the publish loop adopts it into the shared registry
//! (`lease → collate → adopt`), and an adopted slot frees only when the
//! last registration *and* the last consumer pin release it — epoch
//! replays refcount the same placement instead of re-placing bytes. A
//! lease dropped before adoption (an error path) returns its slot to the
//! pool automatically. The counter `stage.publish_copy_bytes` meters the
//! fallback copying path, so after warm-up it must read **0**; CI
//! asserts exactly that, and the fifth act below checks it live.
//!
//! Publishes are also announced on a side **cursor channel** — a
//! coalescing, latest-wins cell flushed at a bounded cadence (~25 ms).
//! Semantics for a consumer waking up mid-stream: `latest_cursor(shard)`
//! is guaranteed to be *recent* (no unbounded backlog to drain — stale
//! positions are displaced, never queued, metered by
//! `stage.cursor_coalesced`) but is **not** guaranteed to be every
//! position: it answers "where is the producer *now*?", not "what did I
//! miss?". The batch stream itself remains complete and ordered; the
//! cursor is for lag observability (`consumer.cursor_lag`), not flow
//! control.
//!
//! # Observability
//!
//! Every stage also records latency histograms (`stage.feeder_fetch_ns`,
//! `stage.publish_ack_ns`, `staging.h2d_ns`, `consumer.wait_ns`, … — see
//! the *Observability* section of the `tensorsocket` crate docs for the
//! full metric table with units) into the same registry, and any running
//! producer answers a stateless control-plane scrape with a snapshot of
//! all of it — no consumer attach needed. `tensorsocket::scrape_stats`
//! is the API; the `ts-top` binary is the CLI over it:
//!
//! ```text
//! ts-top ipc:///tmp/ts.sock            # live per-stage latency table
//! ts-top --json ipc:///tmp/ts.sock     # one-shot snapshot for scripts
//! ```
//!
//! The fourth act below scrapes a producer mid-training and prints the
//! publish→ack quantiles; `examples/observability.rs` is the full tour.
//!
//! # The batch flight recorder
//!
//! Histograms aggregate; the flight recorder *narrates*. Every batch is
//! stamped through a lock-free ring of per-batch trace records keyed by
//! `(epoch, shard, seq)`: `fetch`, `copy_wait`, `h2d`, `publish`,
//! `announce` and `ack` spans on the producer side, with `recv`,
//! `rebuild` and `release` stitched onto the same record by in-process
//! consumers. `tensorsocket::scrape_trace` pulls the last-N completed
//! records from a running producer (same stateless control-plane shape
//! as the stats scrape), and `ts-top --trace out.json <endpoint>` writes
//! them as a Chrome trace-event file for `chrome://tracing`/Perfetto. A
//! stall watchdog rides along in the producer: batches stuck past a
//! configurable multiple of the stage p99 are classified (loader-bound,
//! h2d-bound, ack-bound, or consumer-straggler with the offending
//! consumer id) into `watchdog.stalls.*` and the stats-snapshot verdict.
//! The sixth act below replays a batch's whole life from the recorder.
//!
//! # Crash-and-resume: the durable batch log
//!
//! Rubberband pins only reach back to the current epoch's start, and only
//! while the producer keeps them pinned. `.log(dir)` adds the durable
//! tier: a background spiller tees every published batch into an
//! append-only, CRC-framed segment log (`ts-log`) keyed by `(epoch,
//! shard, seq)` — off the hot path, so `stage.publish_copy_bytes` stays
//! 0 — and once a batch is durably logged its rubberband pin becomes
//! sheddable. A consumer that names a **group** (`.group("trainers")`)
//! gets a persisted cursor that advances with its acks; when a group
//! member dies — a clean drop here, `kill -9` in
//! `tests/log_replay_multi_process.rs` — the next consumer to attach
//! under the same group name replays everything from that cursor out of
//! the log (as streamed frames, bit-identical to the live wire shape)
//! and splices onto the live stream with no seam and no re-delivery of
//! acked work. `examples/replay_smoke.rs` runs the same machinery for a
//! *fresh* group attaching mid-run (full-from-offset replay). The
//! seventh act below kills and resumes a trainer mid-epoch.

use std::sync::Arc;
use std::time::Instant;
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_tensor::ops;

fn main() {
    // One machine: shared broker + storage registry + device books.
    let ctx = TsContext::host_only();

    // ---- producer.py -------------------------------------------------------
    // data_loader = DataLoader(dataset)
    let dataset = Arc::new(SyntheticImageDataset::new(2_048, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 4,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    // producer = TensorProducer(data_loader)
    let producer = Producer::builder()
        .context(&ctx)
        .epochs(2)
        .spawn(loader)
        .expect("spawn producer");

    // ---- consumer.py (two collocated training processes) ------------------
    let train = |name: &'static str| {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .connect("inproc://tensorsocket")
                .expect("connect");
            let started = Instant::now();
            let mut checksum = 0u64;
            // for batch in consumer: ... model training iteration ...
            for batch in consumer.by_ref() {
                let batch = batch.expect("clean stream");
                // a stand-in "training step": touch every byte of the batch
                checksum ^= ops::checksum(&batch.fields[0]);
            }
            let secs = started.elapsed().as_secs_f64();
            let samples = consumer.samples_consumed();
            println!(
                "[{name}] {} batches, {samples} samples in {secs:.2}s → {:.0} samples/s (checksum {checksum:016x})",
                consumer.batches_consumed(),
                samples as f64 / secs,
            );
            (consumer.samples_consumed(), checksum)
        })
    };
    let c1 = train("consumer-1");
    let c2 = train("consumer-2");

    let (n1, sum1) = c1.join().expect("consumer 1");
    let (n2, sum2) = c2.join().expect("consumer 2");
    let stats = producer.join().expect("producer");

    println!(
        "[producer] published {} batches over {} epochs, replayed {}, peak consumers {}",
        stats.batches_published,
        stats.epochs_completed,
        stats.batches_replayed,
        stats.peak_consumers
    );
    assert_eq!(n1, n2, "both consumers trained on every sample");
    assert_eq!(sum1, sum2, "and on identical bytes — shared, not copied");
    assert!(ctx.registry.is_empty(), "all shared memory was released");
    println!("ok: both consumers saw identical data; memory fully released");

    // ---- act two: the same dataset through a 2-shard producer group ----
    // Each shard pipeline owns half of every epoch's permutation; the
    // consumer interleaves both streams deterministically by
    // (epoch, shard, seq). Note the consumer code is UNCHANGED from act
    // one — it learns the shard count from the handshake.
    let ctx = TsContext::host_only();
    let dataset = Arc::new(SyntheticImageDataset::new(2_048, 64, 64, 7).with_encoded_len(4_096));
    let loaders = DataLoader::sharded(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
        2,
    );
    let group = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-sharded")
        .epochs(1)
        .spawn_sharded(loaders)
        .expect("spawn sharded group");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .connect("inproc://tensorsocket-sharded")
        .expect("connect sharded consumer");
    assert_eq!(consumer.num_shards(), 2, "learned over the handshake");
    let started = Instant::now();
    let mut per_shard = [0u64; 2];
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        per_shard[batch.shard] += 1;
        std::hint::black_box(batch.labels.view_bytes());
    }
    let secs = started.elapsed().as_secs_f64();
    let stats = group.join_shards().expect("group join");
    println!(
        "[sharded] {} samples via 2 shards ({} + {} batches) in {secs:.2}s → {:.0} samples/s",
        consumer.samples_consumed(),
        per_shard[0],
        per_shard[1],
        consumer.samples_consumed() as f64 / secs,
    );
    assert_eq!(per_shard[0], per_shard[1], "balanced shard partitions");
    assert_eq!(
        stats.iter().map(|s| s.batches_published).sum::<u64>(),
        per_shard[0] + per_shard[1]
    );
    assert!(ctx.registry.is_empty(), "sharded memory fully released");
    println!("ok: 2-shard group covered the dataset exactly once, in one stable stream");

    // ---- act three: GPU staging through the VRAM slab rotation ----
    // The same pipeline with the producer on (simulated) GPU 0: batches
    // are staged through pre-allocated VRAM slabs, the H2D copy of batch
    // n overlapping collation of n+1 — and after warm-up, staging
    // performs zero device allocations.
    let ctx = TsContext::with_gpus(1, 8 << 30, false);
    let dataset = Arc::new(SyntheticImageDataset::new(1_024, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-staged")
        .epochs(1)
        .device(ts_device::DeviceId::Gpu(0)) // staging: Overlapped by default
        .spawn(loader)
        .expect("spawn staged producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .connect("inproc://tensorsocket-staged")
        .expect("connect staged consumer");
    assert_eq!(
        consumer.staging_mode(),
        Some(tensorsocket::StagingMode::Overlapped),
        "the handshake advertises the staging shape"
    );
    let started = Instant::now();
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        assert!(
            batch.fields[0].device().is_gpu(),
            "consumers see device tensors"
        );
        std::hint::black_box(batch.labels.view_bytes());
    }
    let secs = started.elapsed().as_secs_f64();
    let stats = producer.join().expect("staged producer");
    let book = ctx.devices.memory(ts_device::DeviceId::Gpu(0)).unwrap();
    println!(
        "[staged] {} batches on cuda:0 in {secs:.2}s — {} B over PCIe, VRAM peak {} B, \
         {} device allocations (warm-up only), 0 B still in use: {}",
        stats.batches_published,
        ctx.devices
            .traffic()
            .bytes(ts_device::traffic::Channel::Pcie(0)),
        book.peak(),
        book.alloc_count(),
        book.in_use(),
    );
    // The staging stats epilogue: every gauge/counter the subsystem
    // exports through the shared metrics registry.
    println!(
        "[staged] staging.h2d_bytes = {}",
        ctx.metrics.counter("staging.h2d_bytes").get()
    );
    for (name, value) in ctx.metrics.gauge_snapshot() {
        if name.starts_with("staging.") {
            println!("[staged] {name} = {value:.1}");
        }
    }
    assert_eq!(book.in_use(), 0, "slab rotation fully drained");
    assert!(ctx.registry.is_empty(), "staged memory fully released");
    println!("ok: staged epoch shared device-resident batches with zero steady-state allocations");

    // ---- act four: scrape a live producer, ts-top style ----
    // A consumer trains halfway through the stream and pauses; the
    // producer keeps serving control traffic, so a stats scrape — the
    // same stateless request ts-top sends — reads every stage histogram
    // mid-flight. (Over ipc:// or tcp:// this works from another
    // process; inproc:// keeps the example self-contained.)
    let ctx = TsContext::host_only();
    let dataset = Arc::new(SyntheticImageDataset::new(1_024, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-observed")
        .epochs(2)
        .spawn(loader)
        .expect("spawn observed producer");
    let (paused_tx, paused_rx) = std::sync::mpsc::channel();
    let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
    let trainer = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .connect("inproc://tensorsocket-observed")
                .expect("connect observed consumer");
            let mut consumed = 0u64;
            for batch in consumer.by_ref() {
                batch.expect("clean stream");
                consumed += 1;
                if consumed == 32 {
                    paused_tx.send(()).unwrap(); // snapshot point
                    resume_rx.recv().unwrap();
                }
            }
            consumed
        })
    };
    paused_rx
        .recv()
        .expect("trainer reached the snapshot point");
    let stats = tensorsocket::scrape_stats(
        &ctx,
        "inproc://tensorsocket-observed",
        std::time::Duration::from_secs(10),
    )
    .expect("scrape live producer");
    println!(
        "[observed] scraped {} histograms / {} counters (stats v{}) from the live producer:",
        stats.histograms.len(),
        stats.counters.len(),
        stats.version,
    );
    for name in [
        "stage.feeder_fetch_ns",
        "stage.publish_ack_ns",
        "consumer.wait_ns",
    ] {
        let h = stats.histogram(name).expect("stage histogram present");
        println!(
            "[observed] {name}: n={} p50={}us p99={}us max={}us",
            h.count,
            h.p50() / 1_000,
            h.p99() / 1_000,
            h.max / 1_000,
        );
        assert!(h.count > 0 && h.p50() > 0, "{name} must be warm");
    }
    resume_tx.send(()).unwrap();
    let consumed = trainer.join().expect("trainer");
    let stats = producer.join().expect("observed producer");
    assert_eq!(consumed, stats.batches_published);
    println!("ok: live scrape read every stage histogram without attaching a consumer");

    // ---- act five: zero-copy publish through a leased arena ----
    // `.arena(path)` flips publishing to the metadata-only shape: the
    // feeder leases each batch's slot up front and collates straight
    // into it, the publish loop adopts the placement, and the announce
    // carries a handle — no payload bytes move. The proof is a meter,
    // not a promise: `stage.publish_copy_bytes` counts every byte the
    // fallback copying path touches, and it must stay at 0.
    let ctx = TsContext::host_only();
    let arena_path =
        std::env::temp_dir().join(format!("ts-quickstart-{}.arena", std::process::id()));
    let dataset = Arc::new(SyntheticImageDataset::new(1_024, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-leased")
        .epochs(2)
        .arena(&arena_path) // auto-sized arena + recycling slot pool
        .spawn(loader)
        .expect("spawn leased producer");
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .connect("inproc://tensorsocket-leased")
        .expect("connect leased consumer");
    for batch in consumer.by_ref() {
        batch.expect("clean stream");
        // A slow-ish training step, so the publish cursor runs ahead and
        // the cursor channel crosses several of its ~25 ms flush windows.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let stats = producer.join().expect("leased producer");
    let copied = ctx.metrics.counter("stage.publish_copy_bytes").get();
    println!(
        "[leased] {} batches published, {copied} payload bytes copied at publish time",
        stats.batches_published,
    );
    assert_eq!(copied, 0, "publish is pure metadata with an arena bound");
    // The cursor channel: latest-wins, so a late observer reads where
    // the producer IS — positions displaced while nobody looked are
    // counted, not queued.
    let (epoch, seq, index) = consumer
        .latest_cursor(0)
        .expect("at least one cursor flush crossed the stream");
    println!(
        "[leased] final cursor: epoch {epoch}, seq {seq} (index {index} in epoch), \
         {} stale positions coalesced away",
        ctx.metrics.counter("stage.cursor_coalesced").get(),
    );
    assert!(ctx.registry.is_empty(), "leased memory fully released");
    let _ = std::fs::remove_file(&arena_path);
    println!("ok: an epoch of batches crossed the socket as pure metadata — zero bytes copied");

    // ---- act six: replay a batch's life from the flight recorder ----
    // A trainer pauses mid-stream; the trace scrape — the same stateless
    // request `ts-top --trace` sends — returns the last-N *completed*
    // per-batch records, each a little waterfall over one shared clock:
    // fetch → publish → announce → ack on the producer side, with the
    // in-process consumer's recv → rebuild → release stitched onto the
    // same (epoch, shard, seq) record.
    let ctx = TsContext::host_only();
    let dataset = Arc::new(SyntheticImageDataset::new(1_024, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-recorded")
        .epochs(2)
        .spawn(loader)
        .expect("spawn recorded producer");
    let (paused_tx, paused_rx) = std::sync::mpsc::channel();
    let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
    let trainer = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .connect("inproc://tensorsocket-recorded")
                .expect("connect recorded consumer");
            let mut consumed = 0u64;
            for batch in consumer.by_ref() {
                batch.expect("clean stream");
                consumed += 1;
                if consumed == 32 {
                    paused_tx.send(()).unwrap();
                    resume_rx.recv().unwrap();
                }
            }
            consumed
        })
    };
    paused_rx.recv().expect("trainer reached the pause point");
    let trace = tensorsocket::scrape_trace(
        &ctx,
        "inproc://tensorsocket-recorded",
        16,
        std::time::Duration::from_secs(10),
    )
    .expect("scrape flight recorder");
    println!(
        "[recorder] scraped {} completed batch record(s) (trace v{})",
        trace.records.len(),
        trace.version,
    );
    let record = trace.records.first().expect("a completed record");
    let mut spans: Vec<(u8, u64, u64)> = record.spans.clone();
    spans.sort_by_key(|&(_, start, _)| start);
    let base = spans.first().map(|&(_, s, _)| s).unwrap_or(0);
    println!(
        "[recorder] batch (epoch {}, shard {}, seq {}):",
        record.epoch, record.shard, record.seq
    );
    for (kind, start, end) in spans {
        let name = tensorsocket::SpanKind::from_u8(kind)
            .map(|k| k.as_str())
            .unwrap_or("?");
        println!(
            "[recorder]   {name:>9} +{:>6}us for {:>6}us",
            (start - base) / 1_000,
            (end - start) / 1_000,
        );
    }
    assert!(record.complete, "only completed records are scraped");
    assert!(
        record.span(tensorsocket::SpanKind::Recv).is_some(),
        "in-process consumer spans stitch onto the producer's record"
    );
    resume_tx.send(()).unwrap();
    let consumed = trainer.join().expect("trainer");
    let stats = producer.join().expect("recorded producer");
    assert_eq!(consumed, stats.batches_published);
    println!(
        "ok: the flight recorder replayed a batch's whole life — run \
         `ts-top --trace out.json <endpoint>` for the Chrome-trace view"
    );

    // ---- act seven: crash-and-resume through the durable batch log ----
    // `.log(dir)` tees every published batch into the ts-log segments;
    // `.group("trainers")` gives a consumer a persisted cursor. A trainer
    // that dies mid-epoch is resumed by the next consumer attaching under
    // the same group name: the producer replays the un-acked range out of
    // the log and splices it onto the live stream, byte-identically.
    let ctx = TsContext::host_only();
    let log_dir = std::env::temp_dir().join(format!("ts-quickstart-{}.log", std::process::id()));
    let _ = std::fs::remove_dir_all(&log_dir);
    let dataset = Arc::new(SyntheticImageDataset::new(512, 32, 32, 7).with_encoded_len(2_048));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    const ACT7_EPOCHS: u64 = 3;
    const ACT7_PER_EPOCH: u64 = 512 / 32;
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint("inproc://tensorsocket-logged")
        .epochs(ACT7_EPOCHS)
        .rubberband_cutoff(1.0) // admit the resumer mid-epoch, not at the boundary
        .log(&log_dir) // the durable tier
        .spawn(loader)
        .expect("spawn logged producer");

    // A second trainer stands in for the rest of the fleet: it keeps the
    // run alive across the crash, pausing just past the victim's exit so
    // the producer cannot finish before the group resumes.
    let successor_up = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let fleet = {
        let ctx = ctx.clone();
        let successor_up = successor_up.clone();
        std::thread::spawn(move || {
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .connect("inproc://tensorsocket-logged")
                .expect("connect fleet consumer");
            let mut stream = Vec::new();
            for batch in consumer.by_ref() {
                let batch = batch.expect("clean stream");
                stream.push((batch.seq, ops::checksum(&batch.fields[0])));
                while stream.len() as u64 > ACT7_PER_EPOCH * 3 / 2
                    && !successor_up.load(std::sync::atomic::Ordering::Acquire)
                {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            stream
        })
    };

    // The doomed trainer: consumes one and a half epochs, then "crashes"
    // (drops mid-stream — see tests/log_replay_multi_process.rs for the
    // real SIGKILL variant; the cursor machinery is identical).
    let mut victim = Consumer::builder()
        .context(&ctx)
        .group("trainers")
        .connect("inproc://tensorsocket-logged")
        .expect("connect doomed trainer");
    let mut victim_stream = Vec::new();
    for batch in victim.by_ref() {
        let batch = batch.expect("clean stream");
        victim_stream.push((batch.seq, ops::checksum(&batch.fields[0])));
        if victim_stream.len() as u64 >= ACT7_PER_EPOCH * 3 / 2 {
            break;
        }
    }
    drop(victim);
    println!(
        "[logged] trainer died after {} batches — resuming group \"trainers\"",
        victim_stream.len()
    );

    // Same group, new consumer: picks up at the persisted cursor.
    let mut successor = Consumer::builder()
        .context(&ctx)
        .group("trainers")
        .connect("inproc://tensorsocket-logged")
        .expect("connect resuming trainer");
    successor_up.store(true, std::sync::atomic::Ordering::Release);
    let mut resumed = Vec::new();
    for batch in successor.by_ref() {
        let batch = batch.expect("clean stream");
        resumed.push((batch.seq, ops::checksum(&batch.fields[0])));
    }
    drop(successor);
    let full = fleet.join().expect("fleet consumer");
    producer.join().expect("logged producer");

    // Victim prefix + successor tail, deduplicated on seq, is exactly the
    // uninterrupted stream — no holes, identical payload bytes.
    let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &(seq, sum) in victim_stream.iter().chain(resumed.iter()) {
        let prev = merged.insert(seq, sum);
        assert!(
            prev.is_none_or(|p| p == sum),
            "re-delivered batch diverged at seq {seq}"
        );
    }
    assert_eq!(
        merged,
        full.into_iter().collect(),
        "crash + resume must reproduce the uninterrupted stream exactly"
    );
    println!(
        "[logged] resumed at seq {} — {} batches replayed from the log, group made whole",
        resumed.first().map(|&(s, _)| s).unwrap_or(0),
        ctx.metrics.counter("replay.log_batches").get(),
    );
    let _ = std::fs::remove_dir_all(&log_dir);
    println!("ok: a dead trainer's group resumed from its durable cursor with zero lost batches");
}
