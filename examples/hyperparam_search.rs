//! Hyper-parameter search with flexible batch sizing and batch-order
//! variation (§3.2.6–3.2.7, Figure 5) plus a rubberband late joiner
//! (§3.2.5, Figure 6).
//!
//! ```text
//! cargo run --release --example hyperparam_search
//! ```
//!
//! Four "search trials" train on the same producer with different batch
//! sizes (a real hyper-parameter). Per-consumer offsets and shuffling
//! decorrelate the batch streams; a fifth trial joins a moment late and is
//! caught up by rubberbanding.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use tensorsocket::protocol::order::OrderConfig;
use tensorsocket::{Consumer, FlexibleConfig, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, Dataset, SyntheticImageDataset};

fn main() {
    let ctx = TsContext::host_only();
    let dataset = Arc::new(SyntheticImageDataset::new(1_024, 32, 32, 3).with_encoded_len(1_024));
    // Labels are ImageNet-style class ids (with collisions); coverage is
    // checked against the label set the dataset actually contains.
    let expected_labels: BTreeSet<i64> = (0..dataset.len())
        .map(|i| dataset.get(i).expect("sample").label)
        .collect();
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 64,
            num_workers: 2,
            shuffle: true,
            seed: 9,
            ..Default::default()
        },
    );
    let producer = Producer::builder()
        .context(&ctx)
        .epochs(1)
        // keep the join window open across the whole (short) epoch so
        // the deliberately late trial is always admitted with replay
        .rubberband_cutoff(1.0)
        .flexible(FlexibleConfig {
            producer_batch: 256,
            order: OrderConfig {
                offsets: true,
                shuffle: true,
                seed: 17,
            },
        })
        .spawn(loader)
        .expect("spawn producer");

    let trial = |name: &'static str, batch_size: usize, delay: Duration| {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            let mut consumer = Consumer::builder()
                .context(&ctx)
                .batch_size(batch_size)
                .connect("inproc://tensorsocket")
                .expect("connect");
            let mut labels: Vec<i64> = Vec::new();
            let mut batches = 0u64;
            let mut first_batch_labels = None;
            for batch in consumer.by_ref() {
                let batch = batch.expect("clean stream");
                let l = batch.labels.to_vec_i64().expect("labels");
                if first_batch_labels.is_none() {
                    first_batch_labels = Some(l.clone());
                }
                labels.extend(l);
                batches += 1;
                // a real "training step" paces the epoch so the late trial
                // has something to join
                std::hint::black_box(ts_tensor::ops::busy_work(batch.seq, 4_000_000));
            }
            let distinct: BTreeSet<i64> = labels.iter().copied().collect();
            println!(
                "[{name}] bs={batch_size:<3} batches={batches:<3} samples={:<5} distinct={} repeats={}",
                labels.len(),
                distinct.len(),
                labels.len() - distinct.len(),
            );
            (first_batch_labels.unwrap_or_default(), distinct)
        })
    };

    // Four trials with different batch sizes, one joining late.
    let handles = vec![
        trial("trial-a", 64, Duration::from_millis(0)),
        trial("trial-b", 96, Duration::from_millis(0)),
        trial("trial-c", 128, Duration::from_millis(0)),
        trial("trial-d (late)", 64, Duration::from_millis(40)),
    ];
    let results: Vec<(Vec<i64>, BTreeSet<i64>)> = handles
        .into_iter()
        .map(|h| h.join().expect("trial"))
        .collect();
    let stats = producer.join().expect("producer");

    // Every trial covered the full dataset despite different batch sizes
    // and join times.
    for (i, (_, distinct)) in results.iter().enumerate() {
        assert_eq!(distinct, &expected_labels, "trial {i} missed samples");
    }
    // Offsets + shuffling: the first batches differ between trials.
    assert_ne!(
        results[0].0, results[1].0,
        "order variation should decorrelate trials"
    );
    println!(
        "[producer] {} producer batches, {} replayed for the late joiner",
        stats.batches_published, stats.batches_replayed
    );
    println!("ok: all trials covered the dataset with decorrelated batch streams");
}
