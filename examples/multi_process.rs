//! The paper's deployment model for real: N independent consumer
//! *processes* training off one producer *process*, collocated on one
//! machine. Control metadata crosses `ipc://` sockets; batch bytes are
//! written once into a shared-memory arena and mapped zero-copy by every
//! consumer process.
//!
//! ```text
//! cargo run --release --example multi_process            # 2 consumers
//! cargo run --release --example multi_process -- 4       # 4 consumers
//! ```
//!
//! The binary re-executes itself for the consumer role, so this one file
//! is the whole topology:
//!
//! ```text
//!   producer process                      consumer process (xN)
//!   ─────────────────                     ────────────────────
//!   Producer::builder()
//!     .endpoint("ipc:///tmp/….sock")
//!     .arena(path)   // auto-sized        Consumer::builder()
//!     .spawn(loader)                        .connect(same URI)  // that's ALL
//!   announce/ack metadata  ────────── ipc:// sockets ──────────►
//!   batch bytes            ══════════ mmap'd arena   ══════════►
//! ```
//!
//! The consumer side is the paper's one-line swap for real: it receives
//! **only the endpoint URI**. Shard count, arena path and slot geometry,
//! and the batch schema all arrive over the versioned HELLO/WELCOME
//! attach handshake — nothing to mirror out of band, nothing to
//! misconfigure.
//!
//! Swap the `ipc://` URI for `tcp://host:port` to cross machines (the
//! arena stays node-local; remote consumers then need a byte-carrying
//! path, which this reproduction does not model).

use std::sync::Arc;
use std::time::Instant;
use tensorsocket::{Consumer, Producer};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_tensor::ops;

/// Paths are per-producer-run (pid-tagged) so two concurrent launches
/// cannot truncate each other's live arena; consumer children inherit
/// the endpoint through the environment. Note the consumers never see
/// the arena path — the handshake advertises it.
fn endpoint_and_arena() -> (String, std::path::PathBuf) {
    if let Ok(endpoint) = std::env::var("TS_EXAMPLE_ENDPOINT") {
        return (endpoint, std::path::PathBuf::new());
    }
    let tmp = std::env::temp_dir();
    let tag = std::process::id();
    (
        format!(
            "ipc://{}",
            tmp.join(format!("ts-example-mp-{tag}.sock")).display()
        ),
        tmp.join(format!("ts-example-mp-{tag}.arena")),
    )
}

fn consumer_process(name: String) {
    let (endpoint, _) = endpoint_and_arena();
    // The whole consumer-side configuration. The shard count, the arena
    // path and geometry, and the batch schema arrive over the attach
    // handshake; the builder maps the advertised arena before joining.
    let mut consumer = Consumer::builder()
        .connect(&endpoint)
        .expect("connect to producer");
    let started = Instant::now();
    let mut checksum = 0u64;
    let mut arena_batches = 0u64;
    for batch in consumer.by_ref() {
        let batch = batch.expect("clean stream");
        // A stand-in "training step": touch every byte of the batch. The
        // bytes live in the producer's arena, mapped into this process.
        checksum ^= ops::checksum(&batch.fields[0]);
        if batch.fields[0].storage().is_shared_memory() {
            arena_batches += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "[{name} pid {}] {} batches ({} arena-backed), {} samples in {secs:.2}s → {:.0} samples/s (checksum {checksum:016x})",
        std::process::id(),
        consumer.batches_consumed(),
        arena_batches,
        consumer.samples_consumed(),
        consumer.samples_consumed() as f64 / secs,
    );
    assert_eq!(
        arena_batches,
        consumer.batches_consumed(),
        "every batch must come out of the shared-memory arena"
    );
    assert_eq!(
        consumer.stop_reason(),
        Some(tensorsocket::runtime::consumer::StopReason::End),
        "consumer must stop on the producer's End, not a timeout"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--role") {
        if args.get(pos + 1).map(String::as_str) == Some("consumer") {
            let name = args
                .get(pos + 2)
                .cloned()
                .unwrap_or_else(|| "consumer".into());
            consumer_process(name);
            return;
        }
    }
    let consumers: usize = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    let (endpoint, arena_path) = endpoint_and_arena();
    let dataset = Arc::new(SyntheticImageDataset::new(2_048, 64, 64, 7).with_encoded_len(4_096));
    let loader = DataLoader::new(
        dataset,
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            shuffle: true,
            seed: 42,
            ..Default::default()
        },
    );
    // The builder creates the arena, auto-sized from the loader's own
    // geometry (slot size from a decoded sample x batch size, slot count
    // from the publish window + rubberband headroom), and binds the
    // recycling slot pool — no hand-computed depths anywhere.
    let producer = Producer::builder()
        .endpoint(&endpoint)
        .arena(&arena_path)
        .epochs(2)
        .spawn(loader)
        .expect("spawn producer");
    let arena = producer.arena().expect("auto-provisioned arena").clone();
    let ctx = producer.context().clone();

    let exe = std::env::current_exe().expect("own path");
    let children: Vec<_> = (0..consumers)
        .map(|i| {
            std::process::Command::new(&exe)
                .args(["--role", "consumer", &format!("consumer-{i}")])
                .env("TS_EXAMPLE_ENDPOINT", &endpoint)
                .spawn()
                .expect("spawn consumer process")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("consumer process");
        assert!(status.success(), "consumer process failed: {status}");
    }
    let stats = producer.join().expect("producer");
    println!(
        "[producer pid {}] published {} batches over {} epochs, replayed {}, peak consumers {}",
        std::process::id(),
        stats.batches_published,
        stats.epochs_completed,
        stats.batches_replayed,
        stats.peak_consumers
    );
    assert!(ctx.registry.is_empty(), "all shared storages released");
    assert_eq!(arena.slots_in_use(), 0, "arena fully drained");
    println!("ok: {consumers} consumer processes trained zero-copy off one producer process");
}
